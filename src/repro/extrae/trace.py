"""Trace container and (de)serialization.

A trace holds three kinds of data:

* **punctual events** — region enters/exits, iteration markers,
  allocation/group events (:class:`~repro.extrae.events.TraceEvent`);
* **sample blocks** — PEBS records with interpolated counters, appended
  into chunked columnar buffers and consolidated on demand into a
  time-sorted :class:`SampleTable`;
* **object records** — the data objects discovered by allocation
  interception, wrapping and the static scan.

Recording is the acquisition hot path, so it never touches Python-level
per-sample state: :meth:`Trace.add_samples` copies each block's columns
into a growable preallocated buffer (amortized O(1) per sample), and
consolidation merges the already-sorted prefix with the newly appended
chunk incrementally — a fast in-place append when the chunk starts
after the consolidated samples end (the overwhelmingly common case,
since batches are emitted in time order), a single stable two-run merge
otherwise.  Both paths are bit-identical to the historical global
``concatenate`` + stable ``argsort``.  ``n_samples``/``duration_ns``
and repeated ``digest()`` calls never force a rebuild.

Serialization is schema-versioned via the ``"schema"`` field of the
JSON sidecar.  :meth:`Trace.save` writes the **v2 container** by
default — raw little-endian column members with selectable compression
(``"none"``/``"deflate"``, see :mod:`repro.extrae.storage`) — and still
writes the legacy npz-based **v1 container** on request.
:meth:`Trace.load` reads both: v1 eagerly, v2 lazily (columns
materialize on first touch, memory-mapped when uncompressed).
Version-less legacy files load as v1 with a warning; unknown versions
raise :class:`TraceSchemaError`.  No pickling on disk, so traces are
safe to exchange.
"""

from __future__ import annotations

import hashlib
import json
import warnings
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.extrae.events import EventKind, TraceEvent
from repro.extrae.index import TraceIndex
from repro.extrae.memalloc import ObjectRecord
from repro.extrae.storage import (
    SIDECAR_MEMBER,
    TRACE_COMPRESSIONS,
    ColumnReader,
    write_columns,
)
from repro.simproc.machine import SAMPLE_COUNTERS, SampleBlock
from repro.vmem.callstack import CallStack, Frame

__all__ = [
    "EVENT_TIME_EPSILON_NS",
    "SampleTable",
    "Trace",
    "TraceSchemaError",
    "TRACE_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSIONS",
]

#: Version of the on-disk trace layout this build *writes* by default
#: (the ``"schema"`` field of the JSON sidecar).
TRACE_SCHEMA_VERSION = 2

#: Versions :meth:`Trace.load` accepts.
TRACE_SCHEMA_VERSIONS = (1, 2)

#: Tolerance (ns) for the append-time monotonicity check of punctual
#: events.  Machine time is exactly nondecreasing — there is no float
#: slack to absorb — so the comparison is exact.  The constant exists
#: (rather than a literal) so :mod:`repro.validate.invariants` applies
#: the identical rule when re-checking finished traces.
EVENT_TIME_EPSILON_NS = 0.0


class TraceSchemaError(ValueError):
    """A trace file's schema version is unknown to this code."""


#: columnar sample schema: name -> dtype
_SAMPLE_COLUMNS = {
    "time_ns": np.float64,
    "address": np.uint64,
    "op": np.int8,
    "source": np.int8,
    "latency": np.float32,
    "callstack_id": np.int32,
    "label_id": np.int32,
    **{name: np.float64 for name in SAMPLE_COUNTERS},
}


class SampleTable:
    """Columnar view over all samples of a trace, time-sorted.

    Columns are exposed as attributes (``table.address``,
    ``table.latency``, ``table.instructions``, ...).
    """

    def __init__(self, columns: dict[str, np.ndarray]) -> None:
        missing = set(_SAMPLE_COLUMNS) - set(columns)
        if missing:
            raise ValueError(f"sample table missing columns: {sorted(missing)}")
        n = {c.size for c in columns.values()}
        if len(n) > 1:
            raise ValueError("sample columns have inconsistent lengths")
        self._columns = columns

    def __getattr__(self, name: str) -> np.ndarray:
        # Look up _columns via __dict__: during unpickling attributes
        # are probed before __init__ ran, and falling through to
        # self._columns here would recurse.
        columns = self.__dict__.get("_columns")
        if columns is None or name not in columns:
            raise AttributeError(name)
        return columns[name]

    def __len__(self) -> int:
        return int(self._columns["time_ns"].size)

    @property
    def n(self) -> int:
        return len(self)

    def column(self, name: str) -> np.ndarray:
        return self._columns[name]

    def select(self, mask: np.ndarray) -> "SampleTable":
        """Subset by boolean mask or index array."""
        return SampleTable({k: v[mask] for k, v in self.columns().items()})

    def columns(self) -> dict[str, np.ndarray]:
        return dict(self._columns)

    @classmethod
    def empty(cls) -> "SampleTable":
        return cls({k: np.empty(0, dtype=dt) for k, dt in _SAMPLE_COLUMNS.items()})


class _LazySampleTable(SampleTable):
    """Sample table backed by a v2 container: columns load on demand.

    Each column materializes (a view over the reader's one shared
    memory map when the file stores it uncompressed) the first time a
    pass touches it; untouched columns never leave the file.  Read-only
    — mutate via :meth:`materialize`.

    The table owns its reader's file-descriptor lifecycle: close it
    explicitly with :meth:`close` (or use it as a context manager) and
    the descriptor is released immediately instead of whenever the GC
    gets around to it — repeated open/close of the same container is
    fd-neutral.  Touching an unmaterialized stored column after close
    raises ``ValueError``.
    """

    def __init__(self, reader: ColumnReader) -> None:
        self._reader = reader
        self._n = reader.n_samples

    def __getattr__(self, name: str) -> np.ndarray:
        if name not in _SAMPLE_COLUMNS or self.__dict__.get("_reader") is None:
            raise AttributeError(name)
        return self.column(name)

    def __len__(self) -> int:
        return self._n

    def column(self, name: str) -> np.ndarray:
        arr = self._reader.load(name)
        dtype = _SAMPLE_COLUMNS[name]
        if arr.dtype != dtype:
            arr = arr.astype(dtype)
            self._reader.loaded[name] = arr
        return arr

    def columns(self) -> dict[str, np.ndarray]:
        return {name: self.column(name) for name in _SAMPLE_COLUMNS}

    def materialize(self) -> SampleTable:
        """An in-memory copy, decoupled from the backing file."""
        return SampleTable(
            {name: np.array(self.column(name)) for name in _SAMPLE_COLUMNS}
        )

    @property
    def closed(self) -> bool:
        return self._reader.closed

    def close(self) -> None:
        """Release the backing reader's map and descriptor (idempotent)."""
        self._reader.close()

    def __enter__(self) -> "_LazySampleTable":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _ChunkBuffer:
    """Growable columnar sample buffer (amortized O(1) append).

    One preallocated array per sample column, doubled on overflow —
    appending a block is seventeen slice assignments, never a list of
    Python objects or a per-save reconcatenation.
    """

    def __init__(self, capacity: int = 1024) -> None:
        self._n = 0
        self._cap = int(capacity)
        self._cols = {
            name: np.empty(self._cap, dtype=dt)
            for name, dt in _SAMPLE_COLUMNS.items()
        }

    def __len__(self) -> int:
        return self._n

    def _grow_to(self, need: int) -> None:
        if need <= self._cap:
            return
        cap = max(self._cap * 2, need)
        for name, arr in self._cols.items():
            grown = np.empty(cap, dtype=arr.dtype)
            grown[: self._n] = arr[: self._n]
            self._cols[name] = grown
        self._cap = cap

    def append(self, n: int, columns: dict) -> None:
        """Append *n* rows; column values may be arrays or scalars."""
        self._grow_to(self._n + n)
        end = self._n + n
        for name, value in columns.items():
            self._cols[name][self._n : end] = value
        self._n = end

    def adopt(self, columns: dict[str, np.ndarray], n: int) -> None:
        """Replace the contents with already-built full columns."""
        self._cols = columns
        self._n = n
        self._cap = n

    def clear(self) -> None:
        self._n = 0

    def last_time_ns(self) -> float:
        return float(self._cols["time_ns"][self._n - 1])

    def view(self) -> dict[str, np.ndarray]:
        """Zero-copy views of the filled prefix of every column."""
        return {name: arr[: self._n] for name, arr in self._cols.items()}


@dataclass
class Trace:
    """One process's trace."""

    metadata: dict = field(default_factory=dict)
    events: list[TraceEvent] = field(default_factory=list)
    objects: list[ObjectRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._callstacks: list[CallStack] = []
        self._callstack_ids: dict[CallStack, int] = {}
        self._labels: list[str] = []
        self._label_ids: dict[str, int] = {}
        # Recording state: _buf holds the consolidated (time-sorted)
        # prefix, _pending the appended-but-unmerged chunk.  Both are
        # None for traces adopting an external table (load/from_parts)
        # until an append re-seeds them.
        self._buf: _ChunkBuffer | None = _ChunkBuffer()
        self._pending: _ChunkBuffer | None = _ChunkBuffer()
        self._table: SampleTable | None = None
        self._digest: str | None = None
        self._index: TraceIndex | None = None
        self._max_time_ns: float | None = None  # running sample-time max

    # -- intern tables ----------------------------------------------------
    def callstack_id(self, stack: CallStack) -> int:
        """Intern *stack*; returns its stable id."""
        if stack not in self._callstack_ids:
            self._callstack_ids[stack] = len(self._callstacks)
            self._callstacks.append(stack)
        return self._callstack_ids[stack]

    def callstack(self, stack_id: int) -> CallStack:
        return self._callstacks[stack_id]

    def label_id(self, label: str) -> int:
        if label not in self._label_ids:
            self._label_ids[label] = len(self._labels)
            self._labels.append(label)
        return self._label_ids[label]

    def label(self, label_id: int) -> str:
        return self._labels[label_id]

    @property
    def labels(self) -> list[str]:
        return list(self._labels)

    @property
    def callstacks(self) -> list[CallStack]:
        return list(self._callstacks)

    @property
    def n_callstacks(self) -> int:
        return len(self._callstacks)

    # -- recording ----------------------------------------------------------
    def add_event(self, event: TraceEvent) -> None:
        if (
            self.events
            and event.time_ns < self.events[-1].time_ns - EVENT_TIME_EPSILON_NS
        ):
            raise ValueError(
                f"events must be appended in time order "
                f"({event.time_ns} < {self.events[-1].time_ns})"
            )
        self.events.append(event)
        self._digest = None
        self._index = None

    def add_samples(self, block: SampleBlock, callstack: CallStack) -> None:
        """Attach a sample block taken under *callstack*.

        The block's columns are copied straight into the chunked append
        buffer — the block object itself is not retained.
        """
        cs_id = self.callstack_id(callstack)
        lbl_id = self.label_id(block.label)
        self._digest = None
        self._index = None
        n = block.n
        if n == 0:
            return
        if self._pending is None:
            self._seed_buffers_from_table()
        times = np.asarray(block.times_ns, dtype=np.float64)
        columns = {
            "time_ns": times,
            "address": block.addresses,
            "op": np.int8(block.op),
            "source": block.sources,
            "latency": block.latencies,
            "callstack_id": np.int32(cs_id),
            "label_id": np.int32(lbl_id),
        }
        for name in SAMPLE_COUNTERS:
            columns[name] = block.counters[name]
        self._pending.append(n, columns)
        self._table = None
        m = float(times.max())
        if self._max_time_ns is None or m > self._max_time_ns:
            self._max_time_ns = m

    def add_object(self, record: ObjectRecord) -> None:
        self.objects.append(record)
        self._digest = None
        self._index = None

    def _seed_buffers_from_table(self) -> None:
        """Re-enter recording mode on a trace built from external parts."""
        table = self._table if self._table is not None else SampleTable.empty()
        if isinstance(table, _LazySampleTable):
            table = table.materialize()
        buf = _ChunkBuffer(capacity=max(len(table), 1))
        buf.adopt(
            {
                name: np.ascontiguousarray(
                    table.column(name), dtype=_SAMPLE_COLUMNS[name]
                )
                for name in _SAMPLE_COLUMNS
            },
            len(table),
        )
        self._buf = buf
        self._pending = _ChunkBuffer()
        if len(table):
            self._max_time_ns = float(np.max(table.time_ns))

    # -- pickling -----------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle the consolidated columnar form, not the buffers.

        The append buffers exist only for recording (shipping their
        slack capacity would bloat the payload), and lazy tables
        reference an open file — so the pickled trace always carries a
        plain, materialized, consolidated :class:`SampleTable`.
        """
        state = self.__dict__.copy()
        table = self.sample_table()
        if isinstance(table, _LazySampleTable):
            table = table.materialize()
        state["_table"] = table
        state["_buf"] = None
        state["_pending"] = None
        state["_index"] = None
        return state

    # -- content addressing -------------------------------------------------
    def digest(self) -> str:
        """Content digest of the full trace (hex SHA-256).

        Hashes the consolidated sample columns plus the JSON sidecar
        parts (metadata, events, objects, intern tables) — exactly the
        information :meth:`save` persists, so a save/load round-trip
        keeps the digest.  The v1-shaped sidecar is hashed regardless
        of which container version the trace is saved to, keeping the
        digest a property of the *content*, not the encoding.  Two
        traces with equal digests fold identically; the report cache
        (:class:`repro.folding.cache.FoldCache`) uses this as its
        content address.  Cached until the next mutating ``add_*``.
        """
        if self._digest is not None:
            return self._digest
        # Consolidate first: merging sample blocks interns their labels,
        # which the sidecar must already reflect when it is hashed.
        table = self.sample_table()
        h = hashlib.sha256()
        h.update(json.dumps(self._sidecar(schema=1), sort_keys=True).encode())
        for name in sorted(_SAMPLE_COLUMNS):
            col = np.ascontiguousarray(table.column(name))
            h.update(name.encode())
            h.update(col.tobytes())
        self._digest = h.hexdigest()
        return self._digest

    # -- consolidated views ----------------------------------------------------
    @property
    def n_samples(self) -> int:
        if self._buf is not None:
            return len(self._buf) + len(self._pending)
        return len(self._table) if self._table is not None else 0

    def _consolidate(self) -> None:
        """Merge the pending chunk into the sorted prefix.

        The pending chunk is stable-sorted on its own, then either
        appended in place (when it starts at or after the prefix's last
        timestamp — the common case, since batches are emitted in time
        order) or merged with the prefix in one stable two-run pass.
        Both are bit-identical to re-sorting everything globally with a
        stable sort, because every prefix sample was appended before
        every pending sample and therefore wins ties.
        """
        pending = self._pending
        if pending is None or len(pending) == 0:
            return
        chunk = pending.view()
        order = np.argsort(chunk["time_ns"], kind="stable")
        chunk = {name: col[order] for name, col in chunk.items()}
        buf = self._buf
        if len(buf) == 0 or chunk["time_ns"][0] >= buf.last_time_ns():
            buf.append(order.size, chunk)
        else:
            held = buf.view()
            t_held, t_chunk = held["time_ns"], chunk["time_ns"]
            n_held, n_chunk = t_held.size, t_chunk.size
            # Stable two-run merge via searchsorted: prefix rows win
            # ties (side="left"/"right"), matching a global stable sort.
            pos_held = np.arange(n_held) + np.searchsorted(t_chunk, t_held, "left")
            pos_chunk = np.arange(n_chunk) + np.searchsorted(t_held, t_chunk, "right")
            merged: dict[str, np.ndarray] = {}
            for name, dt in _SAMPLE_COLUMNS.items():
                out = np.empty(n_held + n_chunk, dtype=dt)
                out[pos_held] = held[name]
                out[pos_chunk] = chunk[name]
                merged[name] = out
            buf.adopt(merged, n_held + n_chunk)
        pending.clear()
        self._table = None

    def sample_table(self) -> SampleTable:
        """All samples as one time-sorted columnar table (cached)."""
        if self._pending is not None and len(self._pending):
            self._consolidate()
        if self._table is None:
            self._table = (
                SampleTable(self._buf.view())
                if self._buf is not None
                else SampleTable.empty()
            )
        return self._table

    def iter_sample_chunks(
        self,
        columns: tuple[str, ...] | None = None,
        chunk_rows: int | None = None,
    ):
        """Stream the consolidated sample columns in row chunks.

        Yields ``{name: np.ndarray}`` dicts of equal-length row slices
        in time order, covering every sample exactly once.  For a trace
        lazily backed by a v2 container the chunks come straight off
        the file through :func:`repro.extrae.storage.iter_chunks` —
        O(chunk) memory, nothing materialized or memory-mapped.  For an
        in-memory (recording) trace the chunks are zero-copy views of
        the consolidated table.  Either way the streaming fold
        (:mod:`repro.folding.stream`) consumes the same chunk shape.
        """
        from repro.extrae.storage import DEFAULT_CHUNK_ROWS, iter_chunks

        if chunk_rows is None:
            chunk_rows = DEFAULT_CHUNK_ROWS
        if chunk_rows <= 0:
            raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
        names = tuple(columns) if columns is not None else tuple(_SAMPLE_COLUMNS)
        unknown = [name for name in names if name not in _SAMPLE_COLUMNS]
        if unknown:
            raise KeyError(f"unknown sample columns {unknown}")
        table = self.sample_table()
        if isinstance(table, _LazySampleTable):
            for chunk in iter_chunks(table._reader.path, names, chunk_rows):
                yield {
                    name: arr.astype(_SAMPLE_COLUMNS[name], copy=False)
                    for name, arr in chunk.items()
                }
            return
        n = len(table)
        cols = {name: table.column(name) for name in names}
        for lo in range(0, n, chunk_rows):
            hi = min(lo + chunk_rows, n)
            yield {name: col[lo:hi] for name, col in cols.items()}

    # -- indexed queries ----------------------------------------------------
    def index(self) -> TraceIndex:
        """Prebuilt event/sample indexes over this trace (cached).

        Invalidated by any mutating ``add_*``; see
        :class:`repro.extrae.index.TraceIndex`.
        """
        if self._index is None:
            self._index = TraceIndex(self)
        return self._index

    # -- event queries ------------------------------------------------------------
    def region_intervals(self, name: str) -> list[tuple[float, float]]:
        """Matched ``[enter, exit)`` time intervals of region *name*.

        Handles recursion by matching each exit with the most recent
        unmatched enter of the same name.
        """
        return self.index().events.region_intervals(name)

    def iteration_times(self, name: str = "") -> list[float]:
        """Timestamps of ITERATION markers (optionally filtered by name)."""
        return self.index().events.iteration_times(name)

    def duration_ns(self) -> float:
        t = []
        if self.events:
            t.append(self.events[-1].time_ns)
        if self.n_samples:
            t.append(self._sample_max_ns())
        return max(t) if t else 0.0

    def _sample_max_ns(self) -> float:
        """Latest sample timestamp, without forcing consolidation.

        Recording traces track the running max at append time; traces
        adopting an external table read just the ``time_ns`` column
        (one column touch on a lazy table, never a full rebuild).
        """
        if self._max_time_ns is None:
            self._max_time_ns = float(np.max(self._table.time_ns))
        return self._max_time_ns

    # -- serialization ------------------------------------------------------------
    def _sidecar(self, schema: int = TRACE_SCHEMA_VERSION) -> dict:
        """The JSON sidecar :meth:`save` writes (also hashed, in its
        v1 shape, by :meth:`digest`)."""
        return {
            "schema": schema,
            "metadata": self.metadata,
            "labels": self._labels,
            "callstacks": [
                [[f.function, f.file, f.line] for f in cs.frames]
                for cs in self._callstacks
            ],
            "events": [
                {
                    "time_ns": ev.time_ns,
                    "kind": int(ev.kind),
                    "name": ev.name,
                    "payload": ev.payload,
                }
                for ev in self.events
            ],
            "objects": [
                {
                    "name": o.name,
                    "start": o.start,
                    "end": o.end,
                    "kind": o.kind,
                    "bytes_user": o.bytes_user,
                    "n_allocations": o.n_allocations,
                    "time_ns": o.time_ns,
                    "site": (
                        [[f.function, f.file, f.line] for f in o.site.frames]
                        if o.site
                        else None
                    ),
                }
                for o in self.objects
            ],
        }

    def save(
        self,
        path: str | Path,
        *,
        version: int = TRACE_SCHEMA_VERSION,
        compression: str = "none",
    ) -> Path:
        """Write the trace as ``<path>`` (a single-file zip container).

        ``version=2`` (the default) writes raw per-column binary
        members with the selected *compression* (``"none"`` streams
        ``ZIP_STORED`` columns that load back as zero-copy memory maps;
        ``"deflate"`` trades save/load speed for size).  ``version=1``
        writes the legacy npz-in-deflated-zip container, byte-layout
        identical to what earlier builds produced; *compression* does
        not apply to it.
        """
        path = Path(path)
        if version not in TRACE_SCHEMA_VERSIONS:
            raise ValueError(
                f"unknown trace schema version {version!r} "
                f"(this build writes versions {TRACE_SCHEMA_VERSIONS})"
            )
        if compression not in TRACE_COMPRESSIONS:
            raise ValueError(
                f"compression must be one of {TRACE_COMPRESSIONS}, "
                f"got {compression!r}"
            )
        table = self.sample_table()
        if version == 1:
            with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as zf:
                with zf.open("samples.npz", "w") as f:
                    np.savez(f, **table.columns())
                zf.writestr(SIDECAR_MEMBER, json.dumps(self._sidecar(schema=1)))
            return path
        zip_compression = (
            zipfile.ZIP_DEFLATED if compression == "deflate" else zipfile.ZIP_STORED
        )
        with zipfile.ZipFile(path, "w", zip_compression) as zf:
            manifest = write_columns(zf, table.columns(), compression)
            sidecar = self._sidecar(schema=2)
            sidecar["columns"] = manifest
            sidecar["compression"] = compression
            zf.writestr(SIDECAR_MEMBER, json.dumps(sidecar))
        return path

    @classmethod
    def from_parts(
        cls,
        *,
        metadata: dict | None = None,
        events: Iterable[TraceEvent] = (),
        objects: Iterable[ObjectRecord] = (),
        labels: Iterable[str] = (),
        callstacks: Iterable[CallStack] = (),
        table: SampleTable | None = None,
    ) -> "Trace":
        """Assemble a trace from already-consolidated parts.

        Used by :meth:`load` and by tools that rewrite traces (e.g. the
        golden-fixture perturbation helper in
        :mod:`repro.validate.golden`).  The intern tables are rebuilt in
        the given order so ``callstack_id``/``label_id`` columns of
        *table* keep their meaning.
        """
        trace = cls(metadata=dict(metadata or {}))
        for cs in callstacks:
            trace.callstack_id(cs)
        for lbl in labels:
            trace.label_id(lbl)
        trace.events.extend(events)
        trace.objects.extend(objects)
        trace._table = table if table is not None else SampleTable.empty()
        trace._buf = None
        trace._pending = None
        return trace

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace written by :meth:`save` (any known version).

        v1 files materialize eagerly, exactly as before.  v2 files load
        *lazily*: the events/objects/intern tables come from the
        sidecar, but sample columns stay on disk until a pass touches
        them (zero-copy memory maps when stored uncompressed).

        Raises :class:`TraceSchemaError` when the file declares a schema
        version this code does not know.  Files written before schema
        versioning existed (no ``"schema"`` field) load as version 1
        with a :class:`UserWarning`.
        """
        path = Path(path)
        with zipfile.ZipFile(path) as zf:
            sidecar = json.loads(zf.read(SIDECAR_MEMBER))
        schema = sidecar.get("schema")
        if schema is None:
            warnings.warn(
                f"{path}: trace has no schema version (written before "
                f"versioning); loading as schema 1",
                stacklevel=2,
            )
            schema = 1
        elif schema not in TRACE_SCHEMA_VERSIONS:
            raise TraceSchemaError(
                f"{path}: unknown trace schema version {schema!r} "
                f"(this build reads versions {TRACE_SCHEMA_VERSIONS})"
            )
        if schema == 1:
            with zipfile.ZipFile(path) as zf:
                with zf.open("samples.npz") as f:
                    npz = np.load(f)
                    columns = {k: npz[k] for k in npz.files}
            missing = set(_SAMPLE_COLUMNS) - set(columns)
            if missing:
                raise TraceSchemaError(
                    f"{path}: sample table missing columns {sorted(missing)}"
                )
            table: SampleTable = SampleTable(
                {k: columns[k].astype(dt) for k, dt in _SAMPLE_COLUMNS.items()}
            )
        else:
            reader = ColumnReader(path)
            missing = set(_SAMPLE_COLUMNS) - set(reader.columns())
            if missing:
                raise TraceSchemaError(
                    f"{path}: sample table missing columns {sorted(missing)}"
                )
            table = _LazySampleTable(reader)
        return cls.from_parts(
            metadata=sidecar["metadata"],
            callstacks=[
                CallStack(tuple(Frame(*f) for f in cs))
                for cs in sidecar["callstacks"]
            ],
            labels=sidecar["labels"],
            events=[
                TraceEvent(
                    ev["time_ns"], EventKind(ev["kind"]), ev["name"], ev["payload"]
                )
                for ev in sidecar["events"]
            ],
            objects=[
                ObjectRecord(
                    name=o["name"],
                    start=o["start"],
                    end=o["end"],
                    kind=o["kind"],
                    bytes_user=o["bytes_user"],
                    n_allocations=o["n_allocations"],
                    site=(
                        CallStack(tuple(Frame(*f) for f in o["site"]))
                        if o["site"]
                        else None
                    ),
                    time_ns=o["time_ns"],
                )
                for o in sidecar["objects"]
            ],
            table=table,
        )

    # -- resource lifecycle -------------------------------------------------
    def close(self) -> None:
        """Release the file resources of a lazily loaded trace.

        For traces backed by a v2 container this closes the shared
        column map and its file descriptor deterministically
        (idempotent; see :meth:`_LazySampleTable.close`).  In-memory
        (recording) traces hold no file resources — close is a no-op —
        so callers can close any trace uniformly, e.g. via the context
        manager: ``with Trace.load(path) as trace: ...``.
        """
        table = self._table
        if isinstance(table, _LazySampleTable):
            table.close()

    def __enter__(self) -> "Trace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return self.n_samples
