"""Command-line entry points.

Three tools mirroring the BSC workflow (monitor → fold → explore):

* ``bsc-memtools-run`` — run a workload under the tracer, write a trace
  file;
* ``bsc-memtools-fold`` — fold a trace and export the three-panel data
  (gnuplot-style .dat files) plus a text summary;
* ``bsc-memtools-report`` — the full analysis: object resolution report
  and, for HPCG traces, the Figure-1 reproduction tables;
* ``bsc-memtools-validate`` — run the trace invariant checkers
  (:mod:`repro.validate`) over a trace file;
* ``bsc-memtools-cache`` — inspect/clear/prune the content-addressed
  folded-report cache (:mod:`repro.folding.cache`);
* ``bsc-memtools-trace`` — inspect a trace container (schema,
  compression, column stats) or convert between container versions;
* ``bsc-memtools-repo`` — store/list/resolve traces in the
  content-addressed repository (:mod:`repro.repo`);
* ``bsc-memtools-serve`` — run the concurrent analysis service over
  the repository (:mod:`repro.service`).

All commands are also reachable as
``python -m repro.cli <run|fold|report|validate|cache|trace|repo|serve>``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.figures import build_figure1
from repro.extrae.storage import TRACE_COMPRESSIONS
from repro.extrae.trace import TRACE_SCHEMA_VERSIONS, Trace
from repro.extrae.tracer import TracerConfig
from repro.folding.report import fold_trace
from repro.memsim.engines import ENGINE_NAMES
from repro.objects.resolver import resolve_trace
from repro.pipeline import SessionConfig, run_workload
from repro.simproc.sampler import SAMPLER_NAMES
from repro.workloads import (
    HpcgConfig,
    HpcgWorkload,
    RandomAccessWorkload,
    StencilWorkload,
    StreamWorkload,
)
from repro.workloads.randomaccess import RandomAccessConfig
from repro.workloads.stencil import StencilConfig
from repro.workloads.stream import StreamConfig

__all__ = [
    "main",
    "main_cache",
    "main_fold",
    "main_repo",
    "main_report",
    "main_run",
    "main_serve",
    "main_trace",
    "main_validate",
]


def _make_workload(
    workload: str, nx: int, nlevels: int, iterations: int,
    rank: int | None = None, npz: int | None = None,
):
    if workload == "hpcg":
        extra = {}
        if rank is not None:
            extra = {"rank": rank, "npz": npz}
        return HpcgWorkload(
            HpcgConfig(
                nx=nx, ny=nx, nz=nx,
                nlevels=nlevels, n_iterations=iterations, **extra,
            )
        )
    if workload == "stream":
        return StreamWorkload(StreamConfig(n=nx**3, iterations=iterations))
    if workload == "gups":
        return RandomAccessWorkload(RandomAccessConfig(iterations=iterations))
    if workload == "stencil":
        return StencilWorkload(
            StencilConfig(nx=nx**2 if nx < 64 else nx,
                          ny=nx**2 if nx < 64 else nx,
                          iterations=iterations)
        )
    raise SystemExit(f"unknown workload {workload!r}")


def _build_workload(args):
    return _make_workload(args.workload, args.nx, args.nlevels, args.iterations)


class _RankFactory:
    """Picklable per-rank workload factory for ``--ranks`` runs.

    HPCG gets its position in the 1-D rank stack (halo structure
    follows); the other workloads run the same local problem per rank
    (ASLR/sampling still differ through the derived seeds).
    """

    def __init__(self, workload: str, nx: int, nlevels: int, iterations: int):
        self.workload = workload
        self.nx = nx
        self.nlevels = nlevels
        self.iterations = iterations

    def __call__(self, rank: int, n_ranks: int):
        rank_args = (
            {"rank": rank, "npz": n_ranks}
            if self.workload == "hpcg"
            else {}
        )
        return _make_workload(
            self.workload, self.nx, self.nlevels, self.iterations, **rank_args
        )


def main_run(argv: list[str] | None = None) -> int:
    """``bsc-memtools-run``: trace a workload."""
    p = argparse.ArgumentParser(
        prog="bsc-memtools-run", description="Run a workload under the tracer."
    )
    p.add_argument("--workload", choices=["hpcg", "stream", "gups", "stencil"],
                   default="hpcg")
    p.add_argument("--nx", type=int, default=24, help="problem dimension")
    p.add_argument("--nlevels", type=int, default=3)
    p.add_argument("--iterations", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--engine", choices=list(ENGINE_NAMES), default="analytic")
    p.add_argument("--sampler", choices=list(SAMPLER_NAMES), default="pebs",
                   help="sampling backend: Intel PEBS event counters "
                        "(default) or an ARM SPE-like packet stream")
    p.add_argument("--load-period", type=int, default=10_000)
    p.add_argument("--store-period", type=int, default=10_000)
    p.add_argument("--no-multiplex", action="store_true",
                   help="assume load+store groups co-schedulable "
                        "(PEBS only; SPE never multiplexes)")
    p.add_argument("-o", "--output", default="run.bsctrace")
    p.add_argument("--trace-version", type=int, choices=list(TRACE_SCHEMA_VERSIONS),
                   default=2, help="trace container version to write")
    p.add_argument("--compression", choices=list(TRACE_COMPRESSIONS),
                   default="none",
                   help="v2 column compression (v1 is always deflated)")
    p.add_argument("--ranks", type=int, default=1, metavar="N",
                   help="simulate an N-rank stack (HPCG ranks get their "
                        "halo position); workers spill per-rank traces "
                        "and the representative interior rank is written "
                        "to -o")
    p.add_argument("--max-workers", type=int, default=None, metavar="W",
                   help="process-pool width for --ranks (default: "
                        "min(ranks, cpus); 1 forces the serial path)")
    p.add_argument("--spill-dir", default=None, metavar="DIR",
                   help="parent directory for the run-scoped rank spill "
                        "(default: the system temp dir)")
    p.add_argument("--keep-spill", action="store_true",
                   help="preserve the per-rank spill directory instead "
                        "of removing it after the run")
    p.add_argument("--publish", action="store_true",
                   help="also store the trace in the content-addressed "
                        "repository (see bsc-memtools-repo)")
    p.add_argument("--repo-root", default=None, metavar="DIR",
                   help="repository root for --publish (default "
                        "$REPRO_TRACE_REPO or ~/.local/share/repro/traces)")
    args = p.parse_args(argv)

    config = SessionConfig(
        seed=args.seed,
        engine=args.engine,
        tracer=TracerConfig(
            sampler=args.sampler,
            load_period=args.load_period,
            store_period=args.store_period,
            multiplex=not args.no_multiplex,
        ),
    )
    if args.ranks > 1:
        return _run_rank_set(args, config)
    trace = run_workload(_build_workload(args), config)
    path = trace.save(args.output, version=args.trace_version,
                      compression=args.compression)
    print(f"wrote {path} ({trace.n_samples} samples, "
          f"{len(trace.events)} events, {len(trace.objects)} objects)")
    if args.publish:
        from repro.pipeline import publish_trace

        entry = publish_trace(trace, args.repo_root)
        print(f"published {entry.digest} -> {entry.path}")
    return 0


def _run_rank_set(args, config) -> int:
    """The ``--ranks N`` path of ``bsc-memtools-run``."""
    from repro.analysis.ranks import rank_imbalance
    from repro.parallel.ranks import RankSet
    from repro.util.tables import format_table

    rank_set = RankSet(args.ranks, config, max_workers=args.max_workers)
    factory = _RankFactory(args.workload, args.nx, args.nlevels,
                           args.iterations)
    summaries = []

    def progress(done, total, summary):
        summaries.append(summary)
        print(f"  rank {summary.rank:4d}: {summary.n_samples} samples, "
              f"{summary.duration_ns / 1e6:.2f} ms  [{done}/{total}]")

    results = rank_set.run(factory, spill_dir=args.spill_dir,
                           progress=progress)
    if rank_set.last_fallback_reason:
        print(f"note: {rank_set.last_fallback_reason}")
    rows = [
        (r.rank, r.summary.seed, r.summary.n_samples,
         r.summary.duration_ns / 1e6, r.summary.digest[:12])
        for r in results
    ]
    print(format_table(
        ["rank", "seed", "samples", "duration ms", "digest"],
        rows,
        title=f"{args.ranks}-rank {args.workload} stack",
    ))
    for metric, values in (
        ("samples", [s.n_samples for s in summaries]),
        ("duration_ns", [s.duration_ns for s in summaries]),
    ):
        im = rank_imbalance(values, metric)
        print(f"  {metric}: min {im.min:,.0f} / median {im.median:,.0f} / "
              f"max {im.max:,.0f} (max/mean {im.imbalance_factor:.3f})")
    interior = results[args.ranks // 2]
    path = interior.trace.save(args.output, version=args.trace_version,
                               compression=args.compression)
    print(f"wrote {path} (interior rank {interior.rank} "
          f"of {args.ranks})")
    if rank_set.spill_dir is not None:
        if args.keep_spill:
            print(f"per-rank spill kept at {rank_set.spill_dir}")
        else:
            rank_set.cleanup_spill()
    return 0


def main_fold(argv: list[str] | None = None) -> int:
    """``bsc-memtools-fold``: fold a trace and export panel data."""
    p = argparse.ArgumentParser(
        prog="bsc-memtools-fold", description="Fold a trace into the 3-panel report."
    )
    p.add_argument("trace", help="trace file written by bsc-memtools-run")
    p.add_argument("-o", "--output-dir", default="folded")
    p.add_argument("--bandwidth", type=float, default=0.015,
                   help="kernel smoothing width in normalized time")
    p.add_argument("--grid", type=int, default=201)
    p.add_argument("--align", nargs="*", metavar="REGION", default=None,
                   help="piecewise-align instances on these regions' "
                        "enter events (default regions when given empty)")
    p.add_argument("--cache", action="store_true",
                   help="serve/store the folded report through the "
                        "content-addressed on-disk cache")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="cache directory (implies --cache; default "
                        "$REPRO_FOLD_CACHE_DIR or ~/.cache/repro/folding)")
    p.add_argument("--stream", action="store_true",
                   help="fold the performance panel chunk by chunk with "
                        "O(chunk) memory (counters.dat only; bit-identical "
                        "curves)")
    p.add_argument("--directions", default=None, metavar="D1,D2,...",
                   help="with --stream: comma-separated fold directions "
                        "(counters,address,lines) — address/lines add the "
                        "bounded streamed scatter and line track to the "
                        "export")
    p.add_argument("--chunk-rows", type=int, default=None, metavar="N",
                   help="rows per streamed chunk (with --stream)")
    p.add_argument("--live-report-every", type=int, default=None, metavar="N",
                   help="with --stream: print a partial-curves progress "
                        "line every N chunks")
    p.add_argument("--reps", type=int, default=None, metavar="N",
                   help="fold only N representative instances (cluster "
                        "medoids) and extrapolate by cluster weight "
                        "(counters.dat only)")
    p.add_argument("--rep-seed", type=int, default=0, metavar="SEED",
                   help="clustering seed for --reps (default 0)")
    p.add_argument("--rep-report", action="store_true",
                   help="with --reps: also run the exact fold and print "
                        "the measured fidelity bound (costs the full fold)")
    args = p.parse_args(argv)

    align = None
    if args.align is not None:
        align = tuple(args.align) if args.align else (
            "ComputeSYMGS_ref", "ComputeSPMV_ref", "ComputeMG_ref"
        )
    cache = None
    if args.cache or args.cache_dir:
        from repro.folding.cache import FoldCache

        cache = FoldCache(args.cache_dir)
    if args.rep_report and args.reps is None:
        p.error("--rep-report requires --reps")
    if args.reps is not None:
        if args.stream:
            p.error("--reps already folds sub-linearly (drop --stream)")
        if align is not None:
            p.error("--align needs the exact resident fold (drop --reps)")
        if args.reps < 1:
            p.error("--reps must be >= 1")
        trace = Trace.load(args.trace)
        if args.rep_report:
            from repro.folding.extrapolate import measure_fidelity

            ext, bound = measure_fidelity(
                trace, args.reps, seed=args.rep_seed,
                grid_points=args.grid, bandwidth=args.bandwidth,
            )
        else:
            ext = fold_trace(
                trace, grid_points=args.grid, bandwidth=args.bandwidth,
                cache=cache, rep_budget=args.reps, rep_seed=args.rep_seed,
            )
        written = ext.export_gnuplot(args.output_dir)
        print(ext.summary())
        for path in written:
            print(f"wrote {path}")
        return 0
    if args.stream:
        if align is not None:
            p.error("--align needs the resident fold (drop --stream)")
        from repro.folding.stream import DEFAULT_CHUNK_ROWS, stream_fold_trace

        def _progress(snapshot):
            mips = snapshot.mips()
            print(f"  partial fold: mean MIPS {float(mips.mean()):.1f} "
                  f"over σ grid of {mips.size}")

        directions = None
        if args.directions:
            directions = tuple(
                d.strip() for d in args.directions.split(",") if d.strip()
            )
        # Pass the path, not a loaded Trace: the streaming driver then
        # only ever materializes O(chunk) column slices.
        streamed = stream_fold_trace(
            args.trace,
            chunk_rows=(args.chunk_rows if args.chunk_rows is not None
                        else DEFAULT_CHUNK_ROWS),
            grid_points=args.grid,
            bandwidth=args.bandwidth,
            cache=cache,
            report_every=args.live_report_every,
            on_snapshot=_progress if args.live_report_every else None,
            directions=directions,
        )
        written = streamed.export_gnuplot(args.output_dir)
        print(streamed.summary())
        for path in written:
            print(f"wrote {path}")
        return 0
    if args.chunk_rows is not None or args.live_report_every is not None:
        p.error("--chunk-rows/--live-report-every require --stream")
    if args.directions is not None:
        p.error("--directions requires --stream")
    trace = Trace.load(args.trace)
    report = fold_trace(trace, grid_points=args.grid,
                        bandwidth=args.bandwidth, align_regions=align,
                        cache=cache)
    written = report.export_gnuplot(args.output_dir)
    print(report.summary())
    for path in written:
        print(f"wrote {path}")
    return 0


def main_report(argv: list[str] | None = None) -> int:
    """``bsc-memtools-report``: objects + (for HPCG) Figure-1 tables."""
    p = argparse.ArgumentParser(
        prog="bsc-memtools-report", description="Analyse a folded trace."
    )
    p.add_argument("trace")
    p.add_argument("--export-dir", default=None,
                   help="also write the figure panels here")
    p.add_argument("--ascii", action="store_true",
                   help="render the three-panel figure in the terminal")
    p.add_argument("--streams", action="store_true",
                   help="print the dominant data-stream table")
    p.add_argument("--advise", action="store_true",
                   help="print hybrid-memory placement advice")
    p.add_argument("--overhead", action="store_true",
                   help="print the monitoring-overhead model")
    p.add_argument("--regions", action="store_true",
                   help="print the per-code-region progression table")
    p.add_argument("--roofline", action="store_true",
                   help="print the roofline positions of the folded phases")
    p.add_argument("--paraver", default=None, metavar="BASENAME",
                   help="export the trace as Paraver .prv/.pcf/.row")
    args = p.parse_args(argv)

    trace = Trace.load(args.trace)
    print(resolve_trace(trace).to_table())
    print()
    report = None
    if trace.metadata.get("workload") == "hpcg":
        report = fold_trace(trace)
        figure = build_figure1(report)
        print(figure.render())
        if args.ascii:
            from repro.folding.ascii_plot import render_figure

            print()
            print(render_figure(report, figure.phases))
        if args.streams:
            from repro.analysis.streams import identify_streams

            print()
            print(identify_streams(report, figure.phases).to_table())
        if args.advise:
            from repro.analysis.hybrid import advise_placement

            print()
            print(advise_placement(report).to_table())
        if args.regions:
            from repro.analysis.regions import region_progress

            print()
            print(region_progress(trace).to_table())
        if args.roofline:
            from repro.analysis.roofline import roofline

            print()
            print(roofline(report, figure.phases).to_table())
        if args.export_dir:
            for path in figure.export(args.export_dir):
                print(f"wrote {path}")
    if args.overhead:
        from repro.extrae.overhead import estimate_overhead

        print()
        print(estimate_overhead(trace).to_table())
    if args.paraver:
        from repro.extrae.paraver import export_paraver

        for path in export_paraver(trace, args.paraver):
            print(f"wrote {path}")
    return 0


def main_validate(argv: list[str] | None = None) -> int:
    """``bsc-memtools-validate``: run the trace invariant checkers."""
    p = argparse.ArgumentParser(
        prog="bsc-memtools-validate",
        description="Check a trace file against the trace invariants "
        "(time order, address plausibility, source legality, intern "
        "tables, folding mass conservation).",
    )
    p.add_argument("trace", help="trace file written by bsc-memtools-run")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on warnings, not only errors")
    p.add_argument("--no-fold", action="store_true",
                   help="skip the folding mass-conservation check "
                        "(cheaper on huge traces)")
    args = p.parse_args(argv)

    from repro.validate.invariants import validate_trace

    trace = Trace.load(args.trace)
    report = validate_trace(trace, fold=not args.no_fold)
    print(report.summary())
    if not report.ok:
        return 1
    return 1 if (args.strict and report.warnings) else 0


def main_cache(argv: list[str] | None = None) -> int:
    """``bsc-memtools-cache``: manage the folded-report cache."""
    p = argparse.ArgumentParser(
        prog="bsc-memtools-cache",
        description="Inspect, clear or prune the content-addressed "
        "folded-report cache.",
    )
    p.add_argument("action", choices=["info", "clear", "prune"],
                   nargs="?", default="info")
    p.add_argument("--dir", default=None, metavar="DIR",
                   help="cache directory (default $REPRO_FOLD_CACHE_DIR "
                        "or ~/.cache/repro/folding)")
    p.add_argument("--max-bytes", type=int, default=None,
                   help="prune down to this size instead of the default "
                        "bound")
    args = p.parse_args(argv)

    from repro.folding.cache import FoldCache

    cache = FoldCache(args.dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached report(s)")
    elif args.action == "prune":
        removed = cache.prune(args.max_bytes)
        print(f"evicted {removed} cached report(s)")
    print(cache.stats().summary())
    return 0


def _v1_n_samples(path: str) -> int:
    """Sample count of a v1 container from one npy header (O(metadata)).

    The v1 layout nests an npz inside the zip; the row count is in the
    header of any ``.npy`` member, so only those few bytes are
    decompressed — never a column.
    """
    import zipfile

    import numpy as np

    with zipfile.ZipFile(path) as zf, zf.open("samples.npz") as f, \
            zipfile.ZipFile(f) as npz:
        names = npz.namelist()
        if not names:
            return 0
        member = "time_ns.npy" if "time_ns.npy" in names else names[0]
        with npz.open(member) as m:
            version = np.lib.format.read_magic(m)
            if version == (1, 0):
                shape, _, _ = np.lib.format.read_array_header_1_0(m)
            else:
                shape, _, _ = np.lib.format.read_array_header_2_0(m)
            return int(shape[0]) if shape else 1


def _trace_info(path: str) -> None:
    import json
    import zipfile

    with zipfile.ZipFile(path) as zf:
        sidecar = json.loads(zf.read("trace.json"))
        infos = zf.infolist()
    schema = sidecar.get("schema") or 1
    print(f"{path}: trace container v{schema}")
    span = None
    if schema == 2:
        from repro.extrae.storage import ColumnReader

        with ColumnReader(path) as reader:
            manifest = reader.manifest
            n_samples = reader.n_samples
            if n_samples and "time_ns" in manifest:
                span = (
                    float(reader.peek("time_ns", 0)),
                    float(reader.peek("time_ns", -1)),
                )
        print(f"  compression: {sidecar.get('compression', 'none')}")
    else:
        manifest = {}
        n_samples = _v1_n_samples(path)
        print("  compression: deflate (npz)")
    print(f"  samples:     {n_samples}")
    if span is not None:
        print(f"  time span:   {span[0]:.0f} .. {span[1]:.0f} ns")
    print(f"  events:      {len(sidecar.get('events', []))}")
    print(f"  objects:     {len(sidecar.get('objects', []))}")
    print(f"  labels:      {len(sidecar.get('labels', []))}")
    print(f"  callstacks:  {len(sidecar.get('callstacks', []))}")
    stored = {info.filename: info for info in infos}
    if manifest:
        print(f"  {'column':<18} {'dtype':<6} {'bytes':>12} {'stored':>12}")
        for name, spec in manifest.items():
            info = stored.get(f"columns/{name}.bin")
            print(f"  {name:<18} {spec['dtype']:<6} "
                  f"{info.file_size if info else 0:>12} "
                  f"{info.compress_size if info else 0:>12}")
    else:
        for info in infos:
            print(f"  member {info.filename}: {info.file_size} bytes "
                  f"({info.compress_size} stored)")


def main_trace(argv: list[str] | None = None) -> int:
    """``bsc-memtools-trace``: inspect/convert trace containers."""
    p = argparse.ArgumentParser(
        prog="bsc-memtools-trace",
        description="Inspect a trace container or convert it between "
        "schema versions and compression modes.",
    )
    sub = p.add_subparsers(dest="action", required=True)
    p_info = sub.add_parser(
        "info", help="show schema, compression and column stats"
    )
    p_info.add_argument("trace")
    p_conv = sub.add_parser(
        "convert", help="rewrite a trace in another container version"
    )
    p_conv.add_argument("trace")
    p_conv.add_argument("-o", "--output", required=True)
    p_conv.add_argument("--to-version", type=int,
                        choices=list(TRACE_SCHEMA_VERSIONS), default=2)
    p_conv.add_argument("--compression", choices=list(TRACE_COMPRESSIONS),
                        default="none",
                        help="v2 column compression (ignored for v1)")
    p_conv.add_argument("--verify", action="store_true",
                        help="reload the converted file and check the "
                        "content digest is unchanged")
    args = p.parse_args(argv)

    if args.action == "info":
        _trace_info(args.trace)
        return 0
    trace = Trace.load(args.trace)
    out = trace.save(args.output, version=args.to_version,
                     compression=args.compression)
    print(f"wrote {out} (v{args.to_version}, {trace.n_samples} samples)")
    if args.verify:
        if Trace.load(out).digest() != trace.digest():
            print("digest mismatch after conversion", file=sys.stderr)
            return 1
        print("digest verified")
    return 0


def main_repo(argv: list[str] | None = None) -> int:
    """``bsc-memtools-repo``: the content-addressed trace repository."""
    p = argparse.ArgumentParser(
        prog="bsc-memtools-repo",
        description="Store, list and resolve traces in the "
        "content-addressed repository.",
    )
    p.add_argument("--root", default=None, metavar="DIR",
                   help="repository root (default $REPRO_TRACE_REPO or "
                        "~/.local/share/repro/traces)")
    sub = p.add_subparsers(dest="action", required=True)
    p_put = sub.add_parser("put", help="store a trace container")
    p_put.add_argument("trace", nargs="+")
    p_ls = sub.add_parser("list", help="list stored traces")
    p_ls.add_argument("--json", action="store_true", dest="as_json")
    p_info = sub.add_parser("info", help="show one entry's metadata")
    p_info.add_argument("digest")
    p_path = sub.add_parser("path", help="print a container's path")
    p_path.add_argument("digest")
    p_rm = sub.add_parser("rm", help="remove an entry")
    p_rm.add_argument("digest")
    sub.add_parser("reindex", help="rebuild index.json from disk")
    args = p.parse_args(argv)

    import json as _json

    from repro.repo import RepoError, TraceRepo

    repo = TraceRepo(args.root)
    try:
        if args.action == "put":
            for path in args.trace:
                entry = repo.put(path)
                print(f"{entry.digest}  {path}")
        elif args.action == "list":
            entries = repo.list()
            if args.as_json:
                print(_json.dumps(
                    {e.digest: e.meta for e in entries}, indent=2, sort_keys=True
                ))
            else:
                header = ("digest", "workload", "engine", "sampler",
                          "seed", "samples", "ms")
                rows = [e.summary_row() for e in entries]
                widths = [
                    max(len(str(h)), *(len(str(r[i])) for r in rows))
                    if rows else len(str(h))
                    for i, h in enumerate(header)
                ]
                print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
                for row in rows:
                    print("  ".join(
                        str(v).ljust(w) for v, w in zip(row, widths)
                    ))
                print(f"{len(entries)} trace(s) in {repo.root}")
        elif args.action == "info":
            entry = repo.entry(args.digest)
            print(_json.dumps(entry.meta, indent=2, sort_keys=True))
        elif args.action == "path":
            print(repo.get(args.digest))
        elif args.action == "rm":
            print(f"removed {repo.remove(args.digest)}")
        elif args.action == "reindex":
            index = repo.reindex()
            print(f"indexed {index['n_traces']} trace(s) in {repo.root}")
    except RepoError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    return 0


def main_serve(argv: list[str] | None = None) -> int:
    """``bsc-memtools-serve``: run the concurrent analysis service."""
    p = argparse.ArgumentParser(
        prog="bsc-memtools-serve",
        description="Serve trace listings, index queries and folded "
        "reports from the trace repository over HTTP/JSON.",
    )
    p.add_argument("--root", default=None, metavar="DIR",
                   help="repository root (default $REPRO_TRACE_REPO or "
                        "~/.local/share/repro/traces)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="listen port (0 = ephemeral; default 8787)")
    p.add_argument("--workers", type=int, default=2,
                   help="fold worker processes (default 2)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="fold cache shared with the workers "
                        "(default <root>/foldcache)")
    p.add_argument("--trace-cache", type=int, default=8,
                   help="open traces kept mapped (default 8)")
    p.add_argument("--max-requests", type=int, default=None,
                   help="stop after N requests (for tests/benchmarks)")
    args = p.parse_args(argv)

    from repro.repo import TraceRepo
    from repro.service import AnalysisServer

    repo = TraceRepo(args.root)
    server = AnalysisServer(
        repo,
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        trace_cache_capacity=args.trace_cache,
        max_requests=args.max_requests,
    )

    async def _serve():
        await server.start()
        print(f"serving {repo.root} on http://{server.host}:{server.port} "
              f"({server.workers} fold workers)", flush=True)
        try:
            await server._stopped.wait()
        finally:
            await server.stop()

    import asyncio

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: list[str] | None = None) -> int:
    """Dispatcher for ``python -m repro.cli``."""
    commands = {
        "run": main_run,
        "fold": main_fold,
        "report": main_report,
        "validate": main_validate,
        "cache": main_cache,
        "trace": main_trace,
        "repo": main_repo,
        "serve": main_serve,
    }
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in commands:
        print(
            f"usage: python -m repro.cli {{{','.join(commands)}}} [options]",
            file=sys.stderr,
        )
        return 2
    command, rest = argv[0], argv[1:]
    return commands[command](rest)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
