"""Trace validation: invariants, golden fixtures, structural diffing.

The correctness backstop for the whole value chain (PEBS sampling →
object resolution → folding → Figure 1).  Three layers:

* :mod:`repro.validate.invariants` — a :class:`ValidationReport`-
  producing pass over any :class:`~repro.extrae.trace.Trace` checking
  time monotonicity, address plausibility, data-source legality,
  intern-table integrity and folding mass conservation;
* :mod:`repro.validate.golden` — deterministic small reference traces
  per memory engine, committed under ``tests/golden/`` so unintended
  behavior changes fail loudly in CI;
* :mod:`repro.validate.diff` — a tolerance-aware structural differ
  that localizes the first diverging column/row between two traces.

Entry points: ``python -m repro.cli validate <trace>`` (or the
``bsc-memtools-validate`` script), ``TracerConfig.self_check`` for
validation at trace finalize, and ``python -m repro.validate.golden``
to regenerate or check the golden fixtures.
"""

from repro.validate.diff import Divergence, TraceDiff, diff_traces
from repro.validate.golden import (
    GOLDEN_SAMPLERS,
    GOLDEN_SEED,
    check_goldens,
    golden_key,
    golden_trace,
    inject_perturbation,
    write_goldens,
)
from repro.validate.invariants import (
    ValidationError,
    ValidationIssue,
    ValidationReport,
    validate_trace,
)

__all__ = [
    "Divergence",
    "GOLDEN_SAMPLERS",
    "GOLDEN_SEED",
    "TraceDiff",
    "ValidationError",
    "ValidationIssue",
    "ValidationReport",
    "check_goldens",
    "diff_traces",
    "golden_key",
    "golden_trace",
    "inject_perturbation",
    "validate_trace",
    "write_goldens",
]
