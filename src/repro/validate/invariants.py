"""Trace invariant checkers.

:func:`validate_trace` runs every applicable check over a finished
:class:`~repro.extrae.trace.Trace` and returns a
:class:`ValidationReport` — a list of :class:`ValidationIssue` records
(severity ``"error"`` or ``"warning"``) plus which checks ran.  The
checks codify what the rest of the pipeline silently assumes:

* ``event-times`` / ``sample-times`` — punctual events and the sample
  table are nondecreasing in time (the same rule
  :meth:`Trace.add_event` enforces at append time, via the shared
  :data:`~repro.extrae.trace.EVENT_TIME_EPSILON_NS`);
* ``regions`` — every region's enters and exits match up
  (:meth:`Trace.region_intervals` succeeds for each region name);
* ``addresses`` — sample addresses are canonical x86-64 user-space
  pointers, and a sane fraction falls inside known object ranges;
* ``sources`` — the ``source`` column only holds legal
  :class:`~repro.memsim.datasource.DataSource` values (restricted to
  :meth:`HierarchyConfig.legal_sources` when a hierarchy is given);
* ``intern-tables`` — ``callstack_id``/``label_id`` columns index into
  the trace's intern tables, ops are valid ``MemOp`` codes, latencies
  are finite and non-negative;
* ``fold-mass`` — folding conserves sample mass: every sample inside
  an instance lands in the folded output exactly once
  (:func:`repro.folding.fold.count_in_instances`), σ stays in
  ``[0, 1)`` and counter fractions in ``[0, 1]``;
* ``objects`` — object records don't pathologically overlap their own
  kind, and carry non-negative timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.extrae.trace import EVENT_TIME_EPSILON_NS, Trace
from repro.memsim.datasource import DataSource
from repro.memsim.hierarchy import HierarchyConfig
from repro.memsim.patterns import MemOp

__all__ = [
    "ValidationError",
    "ValidationIssue",
    "ValidationReport",
    "validate_trace",
]

#: Highest canonical x86-64 user-space address (48-bit, lower half).
_CANONICAL_LIMIT = 1 << 48


class ValidationError(ValueError):
    """Raised by :meth:`ValidationReport.raise_on_error`."""


@dataclass(frozen=True)
class ValidationIssue:
    """One violated invariant.

    ``check`` names the invariant family, ``severity`` is ``"error"``
    (the trace is inconsistent) or ``"warning"`` (suspicious but not
    provably wrong), ``count`` is how many samples/events are affected.
    """

    check: str
    severity: str
    message: str
    count: int = 1

    def __str__(self) -> str:
        extra = f" (x{self.count})" if self.count > 1 else ""
        return f"[{self.severity}] {self.check}: {self.message}{extra}"


@dataclass
class ValidationReport:
    """Outcome of a :func:`validate_trace` pass."""

    n_samples: int
    n_events: int
    n_objects: int
    checks: list[str] = field(default_factory=list)
    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def errors(self) -> list[ValidationIssue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> list[ValidationIssue]:
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no *error*-severity issue was found."""
        return not self.errors

    def raise_on_error(self) -> None:
        """Raise :class:`ValidationError` if any error issue exists."""
        if not self.ok:
            lines = "\n".join(f"  {i}" for i in self.errors)
            raise ValidationError(
                f"trace failed validation ({len(self.errors)} error(s)):\n{lines}"
            )

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        lines = [
            f"Trace validation: {verdict} "
            f"({len(self.errors)} errors, {len(self.warnings)} warnings)",
            f"  samples: {self.n_samples}  events: {self.n_events}  "
            f"objects: {self.n_objects}",
            f"  checks run: {', '.join(self.checks)}",
        ]
        lines += [f"  {issue}" for issue in self.issues]
        return "\n".join(lines)


class _Collector:
    """Accumulates issues and the list of checks that ran."""

    def __init__(self) -> None:
        self.checks: list[str] = []
        self.issues: list[ValidationIssue] = []

    def ran(self, check: str) -> None:
        self.checks.append(check)

    def error(self, check: str, message: str, count: int = 1) -> None:
        self.issues.append(ValidationIssue(check, "error", message, count))

    def warning(self, check: str, message: str, count: int = 1) -> None:
        self.issues.append(ValidationIssue(check, "warning", message, count))


def _check_event_times(trace: Trace, out: _Collector) -> None:
    out.ran("event-times")
    times = np.array([ev.time_ns for ev in trace.events], dtype=np.float64)
    if times.size == 0:
        return
    if float(times.min()) < 0:
        out.error("event-times", "negative event timestamp")
    # The exact rule add_event applies (EVENT_TIME_EPSILON_NS is 0.0:
    # machine time never goes backwards).
    backwards = np.nonzero(np.diff(times) < -EVENT_TIME_EPSILON_NS)[0]
    if backwards.size:
        i = int(backwards[0])
        out.error(
            "event-times",
            f"event {i + 1} goes backwards in time "
            f"({times[i + 1]} < {times[i]})",
            count=int(backwards.size),
        )


def _check_sample_times(trace: Trace, out: _Collector) -> None:
    out.ran("sample-times")
    t = trace.sample_table().time_ns
    if t.size == 0:
        return
    if not np.isfinite(t).all():
        out.error("sample-times", "non-finite sample timestamp")
        return
    if float(t.min()) < 0:
        out.error("sample-times", "negative sample timestamp")
    backwards = np.nonzero(np.diff(t) < 0)[0]
    if backwards.size:
        out.error(
            "sample-times",
            f"sample table not time-sorted (first at row {int(backwards[0]) + 1})",
            count=int(backwards.size),
        )


def _check_regions(trace: Trace, out: _Collector) -> None:
    out.ran("regions")
    # The event index already grouped enter/exit events by name in one
    # pass; interval matching per name runs on each name's own stream.
    events = trace.index().events
    for name in events.region_names:
        try:
            events.region_intervals(name)
        except ValueError as exc:
            out.error("regions", str(exc))


def _merged_object_intervals(trace: Trace) -> tuple[np.ndarray, np.ndarray]:
    """Union of all object ranges as disjoint sorted intervals."""
    spans = sorted((o.start, o.end) for o in trace.objects)
    starts: list[int] = []
    ends: list[int] = []
    for lo, hi in spans:
        if starts and lo <= ends[-1]:
            ends[-1] = max(ends[-1], hi)
        else:
            starts.append(lo)
            ends.append(hi)
    return (
        np.array(starts, dtype=np.uint64),
        np.array(ends, dtype=np.uint64),
    )


def _check_addresses(
    trace: Trace, out: _Collector, min_matched_fraction: float
) -> None:
    out.ran("addresses")
    addr = trace.sample_table().address
    if addr.size == 0:
        return
    bad = np.count_nonzero((addr == 0) | (addr >= _CANONICAL_LIMIT))
    if bad:
        out.error(
            "addresses",
            "sample address is null or non-canonical (>= 2^48)",
            count=int(bad),
        )
    if not trace.objects:
        out.warning("addresses", "trace has no object records to match against")
        return
    starts, ends = _merged_object_intervals(trace)
    idx = np.searchsorted(starts, addr, side="right") - 1
    matched = (idx >= 0) & (addr < ends[np.maximum(idx, 0)])
    fraction = float(matched.mean())
    if fraction < min_matched_fraction:
        out.warning(
            "addresses",
            f"only {fraction * 100:.1f}% of samples fall inside known "
            f"object ranges (threshold {min_matched_fraction * 100:.0f}%)",
            count=int((~matched).sum()),
        )


def _check_sources(
    trace: Trace,
    out: _Collector,
    hierarchy: HierarchyConfig | None,
    sampler: str,
) -> None:
    out.ran("sources")
    src = trace.sample_table().source
    if src.size == 0:
        return
    values = np.unique(src)
    known = {int(s) for s in DataSource}
    unknown = [int(v) for v in values if int(v) not in known]
    if unknown:
        out.error(
            "sources",
            f"sample source codes {unknown} are not DataSource values",
            count=int(np.isin(src, unknown).sum()),
        )
    if hierarchy is not None:
        # Legality is backend-aware: the SPE backend's NUMA model may
        # emit remote-access codes; the single-socket PEBS model never
        # does.  Unknown codes fail above regardless of backend.
        legal = {
            int(s) for s in hierarchy.legal_sources(remote=sampler == "spe")
        }
        illegal = [int(v) for v in values if int(v) in known and int(v) not in legal]
        if illegal:
            pretty = [DataSource(v).pretty for v in illegal]
            out.error(
                "sources",
                f"sources {pretty} are illegal for a "
                f"{len(hierarchy.levels)}-level hierarchy "
                f"({sampler} backend)",
                count=int(np.isin(src, illegal).sum()),
            )


def _check_intern_tables(trace: Trace, out: _Collector) -> None:
    out.ran("intern-tables")
    table = trace.sample_table()
    if table.n == 0:
        return
    cs = table.callstack_id
    n_cs = trace.n_callstacks
    bad_cs = np.count_nonzero((cs < 0) | (cs >= n_cs))
    if bad_cs:
        out.error(
            "intern-tables",
            f"callstack_id outside [0, {n_cs})",
            count=int(bad_cs),
        )
    lbl = table.label_id
    n_lbl = len(trace.labels)
    bad_lbl = np.count_nonzero((lbl < 0) | (lbl >= n_lbl))
    if bad_lbl:
        out.error(
            "intern-tables", f"label_id outside [0, {n_lbl})", count=int(bad_lbl)
        )
    ops = {int(o) for o in MemOp}
    bad_op = np.count_nonzero(~np.isin(table.op, list(ops)))
    if bad_op:
        out.error("intern-tables", "op is not a MemOp code", count=int(bad_op))
    lat = table.latency
    bad_lat = np.count_nonzero(~np.isfinite(lat) | (lat < 0))
    if bad_lat:
        out.error(
            "intern-tables",
            "latency is negative or non-finite",
            count=int(bad_lat),
        )


def _check_objects(trace: Trace, out: _Collector) -> None:
    out.ran("objects")
    for o in trace.objects:
        if o.time_ns < 0:
            out.error("objects", f"object {o.name!r} has negative timestamp")
    # ObjectRecord.__post_init__ already guarantees start < end and a
    # known kind, so only cross-record properties remain to check here.
    # Dynamic records may legitimately overlap (the allocator reuses
    # freed chunks) and groups span their members by design; static
    # symbols, however, must be disjoint.
    spans = sorted(
        (o.start, o.end, o.name) for o in trace.objects if o.kind == "static"
    )
    for (s0, e0, n0), (s1, e1, n1) in zip(spans, spans[1:]):
        if s1 < e0:
            out.warning(
                "objects",
                f"static objects {n0!r} and {n1!r} overlap "
                f"([{s0:#x},{e0:#x}) vs [{s1:#x},{e1:#x}))",
            )


def _check_fold_mass(trace: Trace, out: _Collector) -> None:
    # Only meaningful when the trace has foldable iteration structure.
    if len(trace.iteration_times()) < 2:
        return
    out.ran("fold-mass")
    from repro.folding.detect import instances_from_iterations
    from repro.folding.fold import count_in_instances, fold_samples

    table = trace.sample_table()
    try:
        instances = instances_from_iterations(trace)
        folded = fold_samples(table, instances)
    except ValueError as exc:
        out.error("fold-mass", f"folding failed: {exc}")
        return
    expected = count_in_instances(table, instances)
    if folded.n != expected:
        out.error(
            "fold-mass",
            f"folding lost or duplicated samples "
            f"({expected} inside instances, {folded.n} folded)",
        )
    if folded.n:
        if float(folded.sigma.min()) < 0 or float(folded.sigma.max()) >= 1.0:
            out.error("fold-mass", "folded sigma outside [0, 1)")
        for name, frac in folded.fractions.items():
            bad = np.count_nonzero((frac < 0) | (frac > 1))
            if bad:
                out.error(
                    "fold-mass",
                    f"counter fraction {name!r} outside [0, 1]",
                    count=int(bad),
                )


def validate_trace(
    trace: Trace,
    hierarchy: HierarchyConfig | None = None,
    *,
    fold: bool = True,
    min_matched_fraction: float = 0.05,
    sampler: str | None = None,
) -> ValidationReport:
    """Run every applicable invariant check over *trace*.

    Parameters
    ----------
    trace:
        A finalized (or loaded) trace.
    hierarchy:
        When given, sample sources are additionally restricted to
        :meth:`HierarchyConfig.legal_sources`; without it only
        membership in :class:`DataSource` is required.
    fold:
        Run the folding mass-conservation check (needs ≥ 2 iteration
        markers; skipped otherwise).  Disable for huge traces where
        folding twice is too expensive.
    min_matched_fraction:
        Below this fraction of samples matched to known object ranges
        the ``addresses`` check emits a warning.
    sampler:
        Sampling backend the trace was recorded with, governing which
        data sources are legal (the SPE backend's remote-access codes
        pass; they are corruption in a PEBS trace).  Default: the
        trace's own ``sampler`` metadata, falling back to PEBS —
        traces written before the sampler abstraction carry no key.
    """
    if sampler is None:
        sampler = str(trace.metadata.get("sampler", "pebs"))
    out = _Collector()
    _check_event_times(trace, out)
    _check_sample_times(trace, out)
    _check_regions(trace, out)
    _check_addresses(trace, out, min_matched_fraction)
    _check_sources(trace, out, hierarchy, sampler)
    _check_intern_tables(trace, out)
    _check_objects(trace, out)
    if fold:
        _check_fold_mass(trace, out)
    return ValidationReport(
        n_samples=trace.n_samples,
        n_events=len(trace.events),
        n_objects=len(trace.objects),
        checks=out.checks,
        issues=out.issues,
    )
