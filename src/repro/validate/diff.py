"""Tolerance-aware structural trace differ.

:func:`diff_traces` compares two traces section by section — sample
table, events, objects, labels, call stacks, metadata — and reports the
**first diverging row of each diverging column** as a
:class:`Divergence`, so a golden-trace regression failure localizes
exactly what moved ("``samples.latency`` row 17: 38.2 != 41.9") instead
of a useless "files differ".

Float comparisons take ``rtol``/``atol`` so goldens survive benign
cross-platform rounding drift; integer and string comparisons are
always exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.extrae.trace import _SAMPLE_COLUMNS, Trace

__all__ = ["Divergence", "TraceDiff", "diff_traces"]


@dataclass(frozen=True)
class Divergence:
    """First observed divergence in one column/field of one section.

    ``row`` is the 0-based index of the first diverging entry, or -1
    when the divergence is structural (length mismatch, missing key).
    """

    section: str
    column: str
    row: int
    a: object
    b: object

    def __str__(self) -> str:
        where = f" row {self.row}" if self.row >= 0 else ""
        return f"{self.section}.{self.column}{where}: {self.a!r} != {self.b!r}"


@dataclass
class TraceDiff:
    """All divergences found between two traces."""

    divergences: list[Divergence] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.divergences

    def first(self) -> Divergence | None:
        return self.divergences[0] if self.divergences else None

    def summary(self) -> str:
        if self.identical:
            return "traces identical"
        lines = [f"{len(self.divergences)} diverging column(s):"]
        lines += [f"  {d}" for d in self.divergences]
        return "\n".join(lines)


def _first_bad_row(
    a: np.ndarray, b: np.ndarray, rtol: float, atol: float
) -> int:
    """Index of the first differing element, or -1 when none differ."""
    if a.dtype.kind in "fc" or b.dtype.kind in "fc":
        close = np.isclose(a, b, rtol=rtol, atol=atol, equal_nan=True)
    else:
        close = a == b
    bad = np.nonzero(~close)[0]
    return int(bad[0]) if bad.size else -1


def _values_differ(a, b, rtol: float, atol: float) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        try:
            return not np.isclose(a, b, rtol=rtol, atol=atol, equal_nan=True)
        except TypeError:
            return True
    return a != b


def _diff_samples(a: Trace, b: Trace, rtol, atol, out: list[Divergence]) -> None:
    ta, tb = a.sample_table(), b.sample_table()
    if ta.n != tb.n:
        out.append(Divergence("samples", "n", -1, ta.n, tb.n))
        return
    for name in _SAMPLE_COLUMNS:
        ca, cb = ta.column(name), tb.column(name)
        row = _first_bad_row(ca, cb, rtol, atol)
        if row >= 0:
            out.append(
                Divergence("samples", name, row, ca[row].item(), cb[row].item())
            )


def _diff_events(a: Trace, b: Trace, rtol, atol, out: list[Divergence]) -> None:
    if len(a.events) != len(b.events):
        out.append(Divergence("events", "n", -1, len(a.events), len(b.events)))
        return
    for i, (ea, eb) in enumerate(zip(a.events, b.events)):
        for fname in ("time_ns", "kind", "name", "payload"):
            va, vb = getattr(ea, fname), getattr(eb, fname)
            if _values_differ(va, vb, rtol, atol):
                out.append(Divergence("events", fname, i, va, vb))
                return


def _diff_objects(a: Trace, b: Trace, rtol, atol, out: list[Divergence]) -> None:
    if len(a.objects) != len(b.objects):
        out.append(Divergence("objects", "n", -1, len(a.objects), len(b.objects)))
        return
    fields = (
        "name", "start", "end", "kind", "bytes_user",
        "n_allocations", "site", "time_ns",
    )
    for i, (oa, ob) in enumerate(zip(a.objects, b.objects)):
        for fname in fields:
            va, vb = getattr(oa, fname), getattr(ob, fname)
            if _values_differ(va, vb, rtol, atol):
                out.append(Divergence("objects", fname, i, va, vb))
                return


def _diff_lists(
    section: str, la: list, lb: list, out: list[Divergence]
) -> None:
    if len(la) != len(lb):
        out.append(Divergence(section, "n", -1, len(la), len(lb)))
        return
    for i, (va, vb) in enumerate(zip(la, lb)):
        if va != vb:
            out.append(Divergence(section, "value", i, va, vb))
            return


def _diff_metadata(
    a: Trace, b: Trace, rtol, atol, ignore: tuple[str, ...],
    out: list[Divergence],
) -> None:
    keys = sorted((set(a.metadata) | set(b.metadata)) - set(ignore))
    for key in keys:
        if key not in a.metadata or key not in b.metadata:
            out.append(
                Divergence(
                    "metadata", key, -1,
                    a.metadata.get(key, "<missing>"),
                    b.metadata.get(key, "<missing>"),
                )
            )
        elif _values_differ(a.metadata[key], b.metadata[key], rtol, atol):
            out.append(Divergence("metadata", key, -1, a.metadata[key], b.metadata[key]))


def diff_traces(
    a: Trace,
    b: Trace,
    *,
    rtol: float = 0.0,
    atol: float = 0.0,
    ignore_metadata: tuple[str, ...] = (),
) -> TraceDiff:
    """Structurally compare two traces.

    Parameters
    ----------
    a, b:
        Traces to compare (*a* is the reference/golden).
    rtol, atol:
        Tolerances applied to float columns and float scalar fields;
        the default 0.0/0.0 demands bit-exact floats.
    ignore_metadata:
        Metadata keys excluded from the comparison (e.g. ``("engine",)``
        when cross-checking two engines expected to agree everywhere
        else).
    """
    out: list[Divergence] = []
    _diff_samples(a, b, rtol, atol, out)
    _diff_events(a, b, rtol, atol, out)
    _diff_objects(a, b, rtol, atol, out)
    _diff_lists("labels", a.labels, b.labels, out)
    _diff_lists("callstacks", a.callstacks, b.callstacks, out)
    _diff_metadata(a, b, rtol, atol, ignore_metadata, out)
    return TraceDiff(out)
