"""Golden-trace fixtures: deterministic reference traces per engine.

A *golden* is a small committed trace produced by a fixed workload +
session configuration (STREAM triad, seed :data:`GOLDEN_SEED`, dense
sampling) for each memory-engine fidelity mode.  CI regenerates the
same trace and diffs it against the committed file with
:func:`repro.validate.diff.diff_traces`; any unintended behavior change
anywhere in the stack (allocator, ASLR, PEBS, engines, latency model,
serialization) then fails loudly with the exact diverging column/row
instead of silently shifting Figure 1.

Regenerate *intentionally* after a deliberate behavior change with::

    python -m repro.validate.golden tests/golden

and check without writing (what CI runs) with::

    python -m repro.validate.golden --check tests/golden
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.extrae.trace import SampleTable, Trace
from repro.extrae.tracer import TracerConfig
from repro.memsim.engines import ENGINE_NAMES
from repro.validate.diff import TraceDiff, diff_traces

__all__ = [
    "GOLDEN_SAMPLERS",
    "GOLDEN_SEED",
    "check_goldens",
    "golden_key",
    "golden_path",
    "golden_trace",
    "inject_perturbation",
    "write_goldens",
]

#: Root seed of every golden session; never change casually — all
#: committed fixtures derive from it.
GOLDEN_SEED = 7

#: Sampling backends with committed per-engine fixtures.
GOLDEN_SAMPLERS = ("pebs", "spe")

#: Relative tolerance for float columns when checking goldens.  Zero
#: drift is expected on one platform; the tiny allowance absorbs
#: cross-platform libm differences in the latency-jitter path.
GOLDEN_RTOL = 1e-9


def _golden_config(engine: str, sampler: str = "pebs"):
    from repro.pipeline import SessionConfig

    return SessionConfig(
        seed=GOLDEN_SEED,
        engine=engine,
        tracer=TracerConfig(
            sampler=sampler,
            load_period=64,
            store_period=64,
            randomization=0.10,
        ),
    )


def _golden_workload():
    from repro.workloads.stream import StreamConfig, StreamWorkload

    return StreamWorkload(StreamConfig(n=2048, iterations=3, blocks=2))


def golden_trace(engine: str, sampler: str = "pebs") -> Trace:
    """Freshly generate the golden trace for *engine* × *sampler*."""
    from repro.pipeline import run_workload

    return run_workload(_golden_workload(), _golden_config(engine, sampler))


def golden_path(
    directory: str | Path, engine: str, sampler: str = "pebs"
) -> Path:
    """Fixture file for one engine × sampler combination.

    The default PEBS backend keeps its historical unsuffixed filename
    (``stream_<engine>.bsctrace``); other backends are suffixed.
    """
    suffix = "" if sampler == "pebs" else f"_{sampler}"
    return Path(directory) / f"stream_{engine}{suffix}.bsctrace"


def golden_key(engine: str, sampler: str = "pebs") -> str:
    """Result-dict key for one combination (engine alone for PEBS)."""
    return engine if sampler == "pebs" else f"{engine}+{sampler}"


def write_goldens(
    directory: str | Path,
    engines: tuple[str, ...] = ENGINE_NAMES,
    samplers: tuple[str, ...] = GOLDEN_SAMPLERS,
) -> list[Path]:
    """(Re)generate and write the golden fixture per engine × sampler."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return [
        golden_trace(engine, sampler).save(
            golden_path(directory, engine, sampler)
        )
        for engine in engines
        for sampler in samplers
    ]


def check_goldens(
    directory: str | Path,
    engines: tuple[str, ...] = ENGINE_NAMES,
    samplers: tuple[str, ...] = GOLDEN_SAMPLERS,
    *,
    rtol: float = GOLDEN_RTOL,
    atol: float = 0.0,
) -> dict[str, TraceDiff]:
    """Regenerate each combination's trace and diff against the file.

    Returns ``{golden_key(engine, sampler): TraceDiff}``; a missing
    fixture file is reported as a diff with a single ``file.missing``
    divergence.
    """
    from repro.validate.diff import Divergence

    results: dict[str, TraceDiff] = {}
    for engine in engines:
        for sampler in samplers:
            key = golden_key(engine, sampler)
            path = golden_path(directory, engine, sampler)
            if not path.exists():
                results[key] = TraceDiff(
                    [Divergence("file", "missing", -1, str(path), None)]
                )
                continue
            results[key] = diff_traces(
                Trace.load(path),
                golden_trace(engine, sampler),
                rtol=rtol,
                atol=atol,
            )
    return results


def inject_perturbation(
    trace: Trace, column: str, row: int, delta: float = 1.0
) -> Trace:
    """Copy *trace* with one sample cell nudged by *delta*.

    Used to prove the golden differ localizes a single-sample change
    (address or latency) to the exact column and row; also handy for
    exercising the validator's corruption checks.
    """
    cols = trace.sample_table().columns()
    if not 0 <= row < len(trace.sample_table()):
        raise IndexError(f"row {row} outside table of {trace.n_samples} samples")
    col = cols[column].copy()
    col[row] += np.asarray(delta).astype(col.dtype)
    cols[column] = col
    return Trace.from_parts(
        metadata=dict(trace.metadata),
        events=list(trace.events),
        objects=list(trace.objects),
        labels=trace.labels,
        callstacks=trace.callstacks,
        table=SampleTable(cols),
    )


def main(argv: list[str] | None = None) -> int:
    """Regenerate (default) or check the golden fixture directory."""
    p = argparse.ArgumentParser(
        prog="python -m repro.validate.golden",
        description="Regenerate or check the committed golden traces.",
    )
    p.add_argument("directory", nargs="?", default="tests/golden")
    p.add_argument(
        "--check",
        action="store_true",
        help="diff freshly generated traces against the committed files "
        "instead of overwriting them (exit 1 on drift)",
    )
    p.add_argument("--engines", nargs="*", default=list(ENGINE_NAMES),
                   choices=list(ENGINE_NAMES))
    p.add_argument("--samplers", nargs="*", default=list(GOLDEN_SAMPLERS),
                   choices=list(GOLDEN_SAMPLERS))
    args = p.parse_args(argv)

    if args.check:
        drift = False
        for key, diff in check_goldens(
            args.directory, tuple(args.engines), tuple(args.samplers)
        ).items():
            status = "ok" if diff.identical else "DRIFT"
            print(f"{key}: {status}")
            if not diff.identical:
                drift = True
                print(diff.summary())
        return 1 if drift else 0
    for path in write_goldens(
        args.directory, tuple(args.engines), tuple(args.samplers)
    ):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
