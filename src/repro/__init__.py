"""Reproduction of "Integrating Memory Perspective into the BSC
Performance Tools" (Servat, Labarta, Hoppe, Giménez, Peña — ICPP 2017).

The package rebuilds the paper's complete measurement-and-analysis
chain on a simulated substrate:

* :mod:`repro.extrae` — the monitoring tool: instrumentation, PEBS
  memory sampling (address, access cost, data source), allocation
  interception, static-object scan, load/store multiplexing;
* :mod:`repro.folding` — the Folding mechanism extended with the memory
  perspective: folded counter curves, folded address scatter, folded
  source-line track;
* :mod:`repro.objects` — data-object identification and address
  resolution, including the paper's manual allocation grouping;
* :mod:`repro.analysis` — the §III analyses: phase segmentation, sweep
  detection, bandwidth approximation, Figure-1 assembly;
* substrates — :mod:`repro.simproc` (CPU + PEBS), :mod:`repro.memsim`
  (cache hierarchy), :mod:`repro.vmem` (address space + allocator),
  :mod:`repro.workloads` (HPCG and friends), :mod:`repro.parallel`
  (rank sets);
* :mod:`repro.pipeline` — the one-call user API.

Quickstart::

    from repro.pipeline import SessionConfig, run_workload, analyze_hpcg
    from repro.workloads import HpcgConfig, HpcgWorkload

    trace = run_workload(HpcgWorkload(HpcgConfig.paper(n_iterations=10)))
    report, figure1 = analyze_hpcg(trace)
    print(figure1.render())
"""

from repro.pipeline import Session, SessionConfig, analyze_hpcg, run_workload

__version__ = "1.0.0"

__all__ = [
    "Session",
    "SessionConfig",
    "__version__",
    "analyze_hpcg",
    "run_workload",
]
