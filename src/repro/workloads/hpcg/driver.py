"""The traced HPCG benchmark driver.

Reproduces the instrumented execution phase of the paper: a
preconditioned-CG iteration whose phase sequence is exactly Figure 1's

``A``  ComputeSYMGS_ref   (MG pre-smoothing: forward sweep a1, backward a2)
``B``  ComputeSPMV_ref    (MG fine-level residual)
``C``  ComputeMG_ref      (recursion onto the coarser levels)
``D``  ComputeSYMGS_ref   (MG post-smoothing: d1, d2)
``E``  ComputeSPMV_ref    (CG's ``Ap = A p``)

plus the dot products and WAXPBY updates of the CG body and the halo
exchanges that precede every gather kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.extrae.tracer import Tracer
from repro.memsim.patterns import MemOp, SequentialPattern
from repro.simproc.calibration import KERNEL_MLP
from repro.simproc.isa import KernelBatch
from repro.vmem.callstack import Frame
from repro.workloads.base import Workload
from repro.workloads.hpcg.geometry import Geometry
from repro.workloads.hpcg.kernels import (
    KernelCosts,
    dot_batches,
    mg_transfer_batches,
    spmv_batches,
    symgs_sweep_batches,
    waxpby_batches,
)
from repro.workloads.hpcg.problem import HpcgProblem, LevelLayout

__all__ = ["HpcgConfig", "HpcgWorkload"]


@dataclass(frozen=True)
class HpcgConfig:
    """Benchmark configuration.

    The paper's run is ``nx=ny=nz=104, nlevels=4`` on an interior rank
    of a 24-rank job; the defaults here are a laptop-scale version with
    the same structure.
    """

    nx: int = 24
    ny: int = 24
    nz: int = 24
    nlevels: int = 3
    n_iterations: int = 10
    blocks_per_kernel: int = 8
    rank: int = 1
    npz: int = 3
    wrap_matrix: bool = True
    emit_setup_traffic: bool = True
    #: additionally run the SciPy reference numerics for the same
    #: geometry/iterations and record the residual history in the trace
    #: metadata (small problems only — builds the actual operator)
    validate_numerics: bool = False
    costs: KernelCosts = field(default_factory=KernelCosts)
    #: per-kernel MLP overrides (ablation A1 forces these equal)
    mlp: dict[str, float] = field(default_factory=lambda: dict(KERNEL_MLP))

    @property
    def geometry(self) -> Geometry:
        return Geometry(
            self.nx, self.ny, self.nz, self.nlevels, rank=self.rank, npz=self.npz
        )

    @classmethod
    def paper(cls, n_iterations: int = 10) -> "HpcgConfig":
        """The full §III configuration (use the analytic engine!)."""
        return cls(nx=104, ny=104, nz=104, nlevels=4, n_iterations=n_iterations)


class HpcgWorkload(Workload):
    """HPCG under the tracer."""

    name = "hpcg"

    def __init__(self, config: HpcgConfig | None = None) -> None:
        self.config = config or HpcgConfig()
        self.problem: HpcgProblem | None = None

    # ------------------------------------------------------------------
    def setup(self, tracer: Tracer) -> None:
        tracer.trace.metadata.update(
            {
                "nx": self.config.nx,
                "ny": self.config.ny,
                "nz": self.config.nz,
                "nlevels": self.config.nlevels,
                "n_iterations": self.config.n_iterations,
                "rank": self.config.rank,
                "npz": self.config.npz,
            }
        )
        self.problem = HpcgProblem.generate(
            tracer,
            self.config.geometry,
            wrap_matrix=self.config.wrap_matrix,
            emit_setup_traffic=self.config.emit_setup_traffic,
        )
        # Record the layout annotations the analyst adds to the folded
        # address panel (Figure 1's ghost/bottom/top labels and the
        # heap/mmap split).
        fine = self.problem.fine
        lo, hi = fine.matrix_span
        annotations: dict[str, list[int]] = {"matrix_span": [lo, hi]}
        for label, (b_lo, b_hi) in fine.halo_ranges("z").items():
            annotations[label] = [b_lo, b_hi]
        tracer.trace.metadata["annotations"] = annotations

    def run(self, tracer: Tracer) -> None:
        if self.problem is None:
            raise RuntimeError("setup() must run before run()")
        fine = self.problem.fine
        # CG setup: r = b - A x (the paper excludes this from analysis).
        with tracer.region("CG_setup", Frame("CG_ref", "CG_ref.cpp", 60)):
            self._halo_exchange(tracer, fine, "x")
            self._run_all(
                tracer,
                spmv_batches(
                    fine, fine.vector("x"), fine.vector("Ap"),
                    self._blocks(0), self.config.costs, self._mlp("spmv"),
                ),
                region=("ComputeSPMV_ref", Frame("ComputeSPMV_ref", "ComputeSPMV_ref.cpp", 41)),
            )
            self._run_all(
                tracer,
                waxpby_batches(
                    fine.vector("r"), fine.vector("b"), fine.vector("Ap"),
                    fine.nrows, self.config.costs,
                ),
                region=("ComputeWAXPBY_ref", None),
            )
        tracer.marker("execution_phase_begin")
        for _ in range(self.config.n_iterations):
            tracer.iteration("cg")
            self._cg_iteration(tracer)
        tracer.marker("execution_phase_end")
        if self.config.validate_numerics:
            self._validate_numerics(tracer)

    def _validate_numerics(self, tracer: Tracer) -> None:
        """Solve the same problem with the SciPy reference numerics and
        record convergence evidence next to the performance trace."""
        from repro.workloads.hpcg import numerics

        geometry = self.config.geometry
        # The reference numerics model the single-rank operator (the
        # traced halo traffic has no numeric counterpart to exchange).
        local = Geometry(geometry.nx, geometry.ny, geometry.nz, geometry.nlevels)
        levels = numerics.build_levels(local)
        rng_b = local.nrows(0)
        import numpy as np

        b = np.ones(rng_b)
        _, residuals = numerics.cg_solve(
            levels, b, max_iters=self.config.n_iterations
        )
        tracer.trace.metadata["residual_history"] = [float(r) for r in residuals]
        tracer.trace.metadata["residual_reduction"] = (
            float(residuals[-1] / residuals[0]) if residuals[0] else 0.0
        )

    # ------------------------------------------------------------------
    def _cg_iteration(self, tracer: Tracer) -> None:
        fine = self.problem.fine
        # z = MG(r): phases A, B, C, D.
        self._mg(tracer, level=0)
        # Dot products + p update (WAXPBY).
        self._run_all(
            tracer,
            dot_batches(fine.vector("r"), fine.vector("z"), fine.nrows,
                        self.config.costs),
            region=("ComputeDotProduct_ref", None),
        )
        self._run_all(
            tracer,
            waxpby_batches(fine.vector("p"), fine.vector("z"), fine.vector("p"),
                           fine.nrows, self.config.costs),
            region=("ComputeWAXPBY_ref", None),
        )
        # E: Ap = A p.
        self._halo_exchange(tracer, fine, "p")
        with tracer.region("ComputeSPMV_ref", Frame("ComputeSPMV_ref", "ComputeSPMV_ref.cpp", 41)):
            self._run_all(
                tracer,
                spmv_batches(
                    fine, fine.vector("p"), fine.vector("Ap"),
                    self._blocks(0), self.config.costs, self._mlp("spmv"),
                ),
            )
        # alpha = rtz / (p, Ap); x += alpha p; r -= alpha Ap.
        self._run_all(
            tracer,
            dot_batches(fine.vector("p"), fine.vector("Ap"), fine.nrows,
                        self.config.costs),
            region=("ComputeDotProduct_ref", None),
        )
        self._run_all(
            tracer,
            waxpby_batches(fine.vector("x"), fine.vector("x"), fine.vector("p"),
                           fine.nrows, self.config.costs),
            region=("ComputeWAXPBY_ref", None),
        )
        self._run_all(
            tracer,
            waxpby_batches(fine.vector("r"), fine.vector("r"), fine.vector("Ap"),
                           fine.nrows, self.config.costs),
            region=("ComputeWAXPBY_ref", None),
        )

    def _mg(self, tracer: Tracer, level: int) -> None:
        """``ComputeMG_ref`` at *level*: smooth, residual, recurse."""
        layout = self.problem.levels[level]
        rhs = layout.vector("r")
        x = layout.vector("z") if level == 0 else layout.vector("x")
        with tracer.region("ComputeMG_ref", Frame("ComputeMG_ref", "ComputeMG_ref.cpp", 40)):
            self._symgs(tracer, layout, rhs, x)  # pre-smooth (A: a1+a2)
            if level + 1 < len(self.problem.levels):
                coarse = self.problem.levels[level + 1]
                self._halo_exchange(tracer, layout, "z" if level == 0 else "x")
                with tracer.region("ComputeSPMV_ref", Frame("ComputeSPMV_ref", "ComputeSPMV_ref.cpp", 41)):
                    self._run_all(
                        tracer,
                        spmv_batches(
                            layout, x, layout.vector("Axf"),
                            self._blocks(level), self.config.costs, self._mlp("spmv"),
                        ),
                    )
                self._run_all(
                    tracer,
                    mg_transfer_batches(
                        layout, coarse, "restrict", rhs, layout.vector("Axf"),
                        coarse.vector("r"), self.config.costs,
                    ),
                    region=("ComputeRestriction_ref", None),
                )
                self._mg(tracer, level + 1)  # C
                self._run_all(
                    tracer,
                    mg_transfer_batches(
                        layout, coarse, "prolong", x, layout.vector("Axf"),
                        coarse.vector("x"), self.config.costs,
                    ),
                    region=("ComputeProlongation_ref", None),
                )
                self._symgs(tracer, layout, rhs, x)  # post-smooth (D: d1+d2)

    def _symgs(self, tracer: Tracer, layout: LevelLayout, rhs: int, x: int) -> None:
        """One symmetric GS step: halo exchange, forward, backward."""
        vec_name = "z" if layout.level == 0 else "x"
        self._halo_exchange(tracer, layout, vec_name)
        with tracer.region(
            "ComputeSYMGS_ref", Frame("ComputeSYMGS_ref", "ComputeSYMGS_ref.cpp", 68)
        ):
            for direction in (1, -1):
                key = "symgs_forward" if direction == 1 else "symgs_backward"
                self._run_all(
                    tracer,
                    symgs_sweep_batches(
                        layout, rhs, x, direction,
                        self._blocks(layout.level), self.config.costs,
                        self._mlp(key),
                    ),
                )

    def _halo_exchange(self, tracer: Tracer, layout: LevelLayout, vector: str) -> None:
        """Pack boundary planes, 'receive' into the halo entries."""
        if layout.halo_entries == 0:
            return
        x = layout.vector(vector)
        plane_b = layout.plane * 8
        patterns = []
        sendbuf = layout.vectors.get("sendbuf")
        cursor = sendbuf
        if layout.has_bottom:
            patterns.append(SequentialPattern(x, layout.plane, 8))  # pack low plane
            patterns.append(
                SequentialPattern(cursor, layout.plane, 8, op=MemOp.STORE)
            )
            cursor += plane_b
        if layout.has_top:
            patterns.append(
                SequentialPattern(x + (layout.nrows - layout.plane) * 8, layout.plane, 8)
            )
            patterns.append(
                SequentialPattern(cursor, layout.plane, 8, op=MemOp.STORE)
            )
        # Receive: neighbours' planes land in the halo entries.
        patterns.append(
            SequentialPattern(
                x + layout.nrows * 8, layout.halo_entries, 8, op=MemOp.STORE
            )
        )
        total = sum(p.count for p in patterns)
        with tracer.region(
            "ExchangeHalo", Frame("ExchangeHalo", "ExchangeHalo.cpp", 60)
        ):
            tracer.execute(
                KernelBatch(
                    label="halo_exchange",
                    patterns=tuple(patterns),
                    instructions=total * 4,
                    branches=total // 8,
                    mlp=KERNEL_MLP["default"],
                    source=Frame("ExchangeHalo", "ExchangeHalo.cpp", 74),
                )
            )

    # ------------------------------------------------------------------
    def _blocks(self, level: int) -> int:
        return max(1, self.config.blocks_per_kernel >> level)

    def _mlp(self, kernel: str) -> float:
        return self.config.mlp.get(kernel, KERNEL_MLP["default"])

    def _run_all(self, tracer: Tracer, batches, region: tuple[str, Frame | None] | None = None):
        if region is not None:
            name, frame = region
            with tracer.region(name, frame):
                for b in batches:
                    tracer.execute(b)
        else:
            for b in batches:
                tracer.execute(b)
