"""HPCG problem geometry and rank decomposition.

The local grid is ``nx × ny × nz`` per MPI rank; the multigrid hierarchy
halves every dimension per level.  Ranks are stacked 1-D along z (the
decomposition that produces exactly the bottom/top halo planes the
paper's Figure 1 annotates).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Geometry"]


@dataclass(frozen=True)
class Geometry:
    """Local problem geometry for one rank.

    Parameters
    ----------
    nx, ny, nz:
        Local grid dimensions (paper: 104 each).
    nlevels:
        Multigrid levels including the fine level (HPCG uses 4); every
        dimension must be divisible by ``2**(nlevels - 1)``.
    rank, npz:
        This rank's index in a 1-D stack of ``npz`` ranks along z.
    """

    nx: int
    ny: int
    nz: int
    nlevels: int = 4
    rank: int = 0
    npz: int = 1

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.nz) < 2:
            raise ValueError("grid dimensions must be at least 2")
        if self.nlevels < 1:
            raise ValueError("need at least one level")
        divisor = 1 << (self.nlevels - 1)
        for name, dim in (("nx", self.nx), ("ny", self.ny), ("nz", self.nz)):
            if dim % divisor:
                raise ValueError(
                    f"{name}={dim} not divisible by 2^(nlevels-1)={divisor}"
                )
        if not 0 <= self.rank < self.npz:
            raise ValueError(f"rank {self.rank} out of range for npz={self.npz}")

    # -- per-level dimensions -----------------------------------------
    def dims(self, level: int) -> tuple[int, int, int]:
        """Grid dimensions at MG *level* (0 = fine)."""
        self._check_level(level)
        f = 1 << level
        return self.nx // f, self.ny // f, self.nz // f

    def nrows(self, level: int = 0) -> int:
        nx, ny, nz = self.dims(level)
        return nx * ny * nz

    def plane(self, level: int = 0) -> int:
        """Points in one z-plane (the halo exchange unit)."""
        nx, ny, _ = self.dims(level)
        return nx * ny

    def total_rows(self) -> int:
        """Rows summed over all MG levels."""
        return sum(self.nrows(lv) for lv in range(self.nlevels))

    # -- neighbours -----------------------------------------------------
    @property
    def has_bottom_neighbor(self) -> bool:
        return self.rank > 0

    @property
    def has_top_neighbor(self) -> bool:
        return self.rank < self.npz - 1

    def halo_entries(self, level: int = 0) -> int:
        """External (ghost) vector entries appended after local rows."""
        n = 0
        if self.has_bottom_neighbor:
            n += self.plane(level)
        if self.has_top_neighbor:
            n += self.plane(level)
        return n

    def ncols(self, level: int = 0) -> int:
        """Local vector length including appended halo entries."""
        return self.nrows(level) + self.halo_entries(level)

    def nnz_estimate(self, level: int = 0) -> int:
        """27 nonzeros per interior row (boundary rows have fewer; HPCG
        allocates 27 slots per row regardless)."""
        return 27 * self.nrows(level)

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.nlevels:
            raise ValueError(f"level {level} out of range [0, {self.nlevels})")
