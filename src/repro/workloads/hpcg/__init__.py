"""HPCG 3.0 reproduction.

High Performance Conjugate Gradient: an additive-Schwarz, symmetric
Gauss–Seidel preconditioned CG solver over a 27-point stencil on a 3-D
grid (Dongarra, Heroux, Luszczek).  The paper runs the reference code
with a local problem of nx=ny=nz=104 on 24 cores and analyses the
execution phase.

This package provides two coupled views of the benchmark:

* :mod:`repro.workloads.hpcg.numerics` — the actual mathematics in
  SciPy sparse form (problem construction, SYMGS sweeps, MG V-cycle,
  preconditioned CG), used to validate that the reproduced benchmark
  really converges like HPCG;
* :mod:`repro.workloads.hpcg.problem` + :mod:`~repro.workloads.hpcg.kernels`
  + :mod:`~repro.workloads.hpcg.driver` — the *traced* benchmark:
  problem generation performs the reference code's allocation pattern
  (three per-row ``new`` arrays, a ``std::map`` node per row, mmap'd
  vectors), and every kernel emits the access streams the reference
  C++ loops perform, through the tracer onto the simulated machine.
"""

from repro.workloads.hpcg.driver import HpcgConfig, HpcgWorkload
from repro.workloads.hpcg.geometry import Geometry
from repro.workloads.hpcg.problem import HpcgProblem, LevelLayout

__all__ = [
    "Geometry",
    "HpcgConfig",
    "HpcgProblem",
    "HpcgWorkload",
    "LevelLayout",
]
