"""Traced HPCG problem generation (``GenerateProblem_ref``).

Reproduces the *allocation behaviour* the paper's §III analysis hinges
on: the reference code allocates its sparse matrix through millions of
consecutive per-row ``new`` calls of a few hundred bytes each (lines
108–110 of ``GenerateProblem_ref.cpp``) plus one ``std::map`` node per
row (line 143) — all far below any sensible object-tracking threshold —
while the vectors are single large allocations that glibc serves from
the mmap region.

With ``wrap_matrix=True`` the generator brackets the per-row loops with
the tracer's manual wrapping instrumentation under the names the
paper's Figure 1 legend shows (``124_GenerateProblem_ref.cpp`` for the
matrix arrays, ``205_GenerateProblem_ref.cpp`` for the map nodes); with
``False`` it reproduces the preliminary, unmatched-references state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.extrae.tracer import Tracer
from repro.memsim.patterns import MemOp, SequentialPattern
from repro.simproc.isa import KernelBatch
from repro.vmem.callstack import CallStack, Frame
from repro.workloads.hpcg.geometry import Geometry

__all__ = ["HpcgProblem", "LevelLayout", "MATRIX_GROUP_NAME", "MAP_GROUP_NAME"]

#: Figure 1 legend names (the line numbers are the wrap instrumentation
#: sites, not the allocation sites).
MATRIX_GROUP_NAME = "124_GenerateProblem_ref.cpp"
MAP_GROUP_NAME = "205_GenerateProblem_ref.cpp"

#: per-row allocation sizes of the reference code
INDL_BYTES = 27 * 4  # local_int_t mtxIndL[27]
VALUES_BYTES = 27 * 8  # double matrixValues[27]
INDG_BYTES = 27 * 8  # global_int_t mtxIndG[27]
#: std::map<global_int_t, local_int_t> red-black-tree node
MAP_NODE_BYTES = 80

_GEN = "GenerateProblem"
_GEN_FILE = "GenerateProblem_ref.cpp"


def _site(line: int, function: str = _GEN, file: str = _GEN_FILE) -> CallStack:
    return CallStack(
        (Frame("main", "main.cpp", 87), Frame(function, file, line))
    )


@dataclass
class LevelLayout:
    """Address-space layout of one MG level's data objects."""

    level: int
    nx: int
    ny: int
    nz: int
    has_bottom: bool
    has_top: bool
    #: start of the interleaved per-row matrix region (indL, values,
    #: indG chunks repeat with ``row_stride``)
    matrix_base: int
    #: combined byte stride of one row's three chunks (incl. headers)
    row_stride: int
    map_base: int
    map_stride: int
    #: vector name -> base byte address (all 8-byte elements)
    vectors: dict[str, int] = field(default_factory=dict)

    @property
    def nrows(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def plane(self) -> int:
        return self.nx * self.ny

    @property
    def halo_entries(self) -> int:
        return self.plane * (int(self.has_bottom) + int(self.has_top))

    @property
    def ncols(self) -> int:
        return self.nrows + self.halo_entries

    def vector(self, name: str) -> int:
        try:
            return self.vectors[name]
        except KeyError:
            raise KeyError(
                f"level {self.level} has no vector {name!r}; "
                f"available: {sorted(self.vectors)}"
            ) from None

    @property
    def matrix_span(self) -> tuple[int, int]:
        """Byte range covering all three per-row matrix arrays."""
        return self.matrix_base, self.matrix_base + self.nrows * self.row_stride

    def halo_ranges(self, vector: str = "x") -> dict[str, tuple[int, int]]:
        """Annotated halo byte ranges of a gathered vector.

        Keys mirror the paper's Figure 1 labels: ``bottom`` and ``top``
        are the halo planes appended after the local entries; ``ghost``
        (if the send buffer exists) is the halo-exchange staging buffer.
        """
        base = self.vector(vector)
        out: dict[str, tuple[int, int]] = {}
        cursor = base + self.nrows * 8
        if self.has_bottom:
            out["bottom"] = (cursor, cursor + self.plane * 8)
            cursor += self.plane * 8
        if self.has_top:
            out["top"] = (cursor, cursor + self.plane * 8)
        if "sendbuf" in self.vectors:
            sb = self.vectors["sendbuf"]
            out["ghost"] = (sb, sb + self.halo_entries * 8)
        return out


class HpcgProblem:
    """All levels' layouts plus the geometry they derive from."""

    def __init__(self, geometry: Geometry, levels: list[LevelLayout]) -> None:
        if len(levels) != geometry.nlevels:
            raise ValueError("one layout per MG level required")
        self.geometry = geometry
        self.levels = levels

    @property
    def fine(self) -> LevelLayout:
        return self.levels[0]

    @classmethod
    def generate(
        cls,
        tracer: Tracer,
        geometry: Geometry,
        wrap_matrix: bool = True,
        emit_setup_traffic: bool = True,
    ) -> "HpcgProblem":
        """Run the (traced) problem generation.

        Parameters
        ----------
        tracer:
            Provides the allocator, instrumentation and machine.
        wrap_matrix:
            Apply the paper's manual allocation wrapping; ``False``
            reproduces the preliminary unmatched state.
        emit_setup_traffic:
            Execute the setup phase's store traffic (the reason the
            figure's matrix region shows *no* stores during execution:
            it was written here).
        """
        levels: list[LevelLayout] = []
        with tracer.region("GenerateProblem_ref", Frame(_GEN, _GEN_FILE, 58)):
            for lv in range(geometry.nlevels):
                levels.append(cls._generate_level(tracer, geometry, lv, wrap_matrix))
        problem = cls(geometry, levels)
        if emit_setup_traffic:
            problem._emit_setup_traffic(tracer)
        return problem

    # ------------------------------------------------------------------
    @staticmethod
    def _generate_level(
        tracer: Tracer, geometry: Geometry, lv: int, wrap_matrix: bool
    ) -> LevelLayout:
        alloc = tracer.allocator
        nx, ny, nz = geometry.dims(lv)
        nrows = geometry.nrows(lv)
        ncols = geometry.ncols(lv)

        suffix = "" if lv == 0 else f"@L{lv}"

        # The reference per-row loop allocates the three arrays for row
        # i before moving to row i+1, so they interleave in memory.
        matrix_specs = [
            (INDL_BYTES, _site(108)),
            (VALUES_BYTES, _site(109)),
            (INDG_BYTES, _site(110)),
        ]
        if wrap_matrix:
            with tracer.wrap_allocations(MATRIX_GROUP_NAME + suffix):
                runs = alloc.malloc_run_interleaved(nrows, matrix_specs)
            with tracer.wrap_allocations(MAP_GROUP_NAME + suffix):
                map_run = alloc.malloc_run(nrows, MAP_NODE_BYTES, _site(143))
        else:
            runs = alloc.malloc_run_interleaved(nrows, matrix_specs)
            map_run = alloc.malloc_run(nrows, MAP_NODE_BYTES, _site(143))
        matrix_base = runs[0].base - 16  # include the first chunk header
        row_stride = runs[0].stride

        vectors: dict[str, int] = {}
        if lv == 0:
            # GenerateProblem_ref allocates the fine-level vectors...
            vectors["b"] = alloc.malloc(nrows * 8, _site(157))
            vectors["x"] = alloc.malloc(ncols * 8, _site(158))
            vectors["xexact"] = alloc.malloc(nrows * 8, _site(159))
            # ...CGData holds the solver vectors...
            vectors["r"] = alloc.malloc(nrows * 8, _site(32, "InitializeSparseCGData", "CGData.hpp"))
            vectors["z"] = alloc.malloc(ncols * 8, _site(33, "InitializeSparseCGData", "CGData.hpp"))
            vectors["p"] = alloc.malloc(ncols * 8, _site(34, "InitializeSparseCGData", "CGData.hpp"))
            vectors["Ap"] = alloc.malloc(nrows * 8, _site(35, "InitializeSparseCGData", "CGData.hpp"))
        else:
            # ...and MGData the coarse-level ones (rhs + solution).
            vectors["r"] = alloc.malloc(nrows * 8, _site(28, "InitializeMGData", "MGData.hpp"))
            vectors["x"] = alloc.malloc(ncols * 8, _site(29, "InitializeMGData", "MGData.hpp"))
        if lv + 1 < geometry.nlevels:
            # Residual work vector for the restriction at this level.
            vectors["Axf"] = alloc.malloc(nrows * 8, _site(30, "InitializeMGData", "MGData.hpp"))
        halo = geometry.halo_entries(lv)
        if halo:
            vectors["sendbuf"] = alloc.malloc(
                max(halo * 8, 1), _site(41, "SetupHalo", "SetupHalo_ref.cpp")
            )

        return LevelLayout(
            level=lv,
            nx=nx,
            ny=ny,
            nz=nz,
            has_bottom=geometry.has_bottom_neighbor,
            has_top=geometry.has_top_neighbor,
            matrix_base=matrix_base,
            row_stride=row_stride,
            map_base=map_run.base,
            map_stride=map_run.stride,
            vectors=vectors,
        )

    def _emit_setup_traffic(self, tracer: Tracer) -> None:
        """The setup phase writes every structure once (and reads the
        global indices while building the local ones)."""
        with tracer.region("setup_fill", Frame(_GEN, _GEN_FILE, 130)):
            for layout in self.levels:
                n = layout.nrows
                patterns = [
                    SequentialPattern(
                        layout.matrix_base, n * layout.row_stride // 8, 8,
                        op=MemOp.STORE,
                    ),
                    SequentialPattern(
                        layout.map_base, n * layout.map_stride // 8, 8,
                        op=MemOp.STORE,
                    ),
                ]
                for name, addr in layout.vectors.items():
                    size = layout.ncols if name in ("x", "z", "p") else layout.nrows
                    patterns.append(
                        SequentialPattern(addr, size, 8, op=MemOp.STORE)
                    )
                total = sum(p.count for p in patterns)
                tracer.execute(
                    KernelBatch(
                        label="setup_fill",
                        patterns=tuple(patterns),
                        instructions=total * 6,
                        branches=total // 4,
                        mlp=8.0,
                        source=Frame(_GEN, _GEN_FILE, 130),
                    )
                )
