"""Reference HPCG numerics in SciPy sparse form.

This is the mathematical content of the benchmark, independent of the
tracing machinery: the 27-point operator, symmetric Gauss–Seidel
smoothing, the multigrid V-cycle preconditioner and preconditioned CG.
The traced workload's access streams mirror exactly these loops; the
tests use this module to confirm the reproduced benchmark converges the
way HPCG does (residual reduction, SPD operator, MG beating plain CG).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.workloads.hpcg.geometry import Geometry

__all__ = [
    "MgLevel",
    "build_levels",
    "build_matrix",
    "cg_solve",
    "mg_precondition",
    "symgs",
]


def build_matrix(nx: int, ny: int, nz: int) -> sp.csr_matrix:
    """The HPCG 27-point operator on an ``nx × ny × nz`` grid.

    Diagonal 26, off-diagonals -1 to every neighbour in the 3×3×3
    stencil cube (clipped at the local boundary, matching a single-rank
    HPCG problem).  Symmetric positive definite.
    """
    n = nx * ny * nz
    iz, iy, ix = np.meshgrid(
        np.arange(nz), np.arange(ny), np.arange(nx), indexing="ij"
    )
    ix, iy, iz = ix.ravel(), iy.ravel(), iz.ravel()
    rows_list, cols_list, vals_list = [], [], []
    for dz in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                cx, cy, cz = ix + dx, iy + dy, iz + dz
                mask = (
                    (cx >= 0) & (cx < nx)
                    & (cy >= 0) & (cy < ny)
                    & (cz >= 0) & (cz < nz)
                )
                r = (iz * ny + iy) * nx + ix
                c = (cz * ny + cy) * nx + cx
                rows_list.append(r[mask])
                cols_list.append(c[mask])
                value = 26.0 if (dx == 0 and dy == 0 and dz == 0) else -1.0
                vals_list.append(np.full(int(mask.sum()), value))
    A = sp.csr_matrix(
        (np.concatenate(vals_list), (np.concatenate(rows_list), np.concatenate(cols_list))),
        shape=(n, n),
    )
    A.sum_duplicates()
    return A


def symgs(A: sp.csr_matrix, r: np.ndarray, x: np.ndarray) -> np.ndarray:
    """One symmetric Gauss–Seidel step: forward sweep then backward sweep.

    Returns the updated ``x`` (also updated in place), exactly the
    reference ``ComputeSYMGS_ref`` semantics.
    """
    lower = sp.tril(A, 0, format="csr")  # D + L
    upper = sp.triu(A, 0, format="csr")  # D + U
    # Forward: (D+L) x_new = r - U x   with U = A - (D+L)
    rhs = r - (A - lower) @ x
    x[:] = spla.spsolve_triangular(lower, rhs, lower=True)
    # Backward: (D+U) x_new = r - L x
    rhs = r - (A - upper) @ x
    x[:] = spla.spsolve_triangular(upper, rhs, lower=False)
    return x


@dataclass
class MgLevel:
    """One level of the multigrid hierarchy."""

    A: sp.csr_matrix
    #: fine-row index of each coarse row (injection restriction)
    f2c: np.ndarray | None  # None on the coarsest level


def build_levels(geometry: Geometry) -> list[MgLevel]:
    """The MG hierarchy: rediscretized operators + injection maps."""
    levels: list[MgLevel] = []
    for lv in range(geometry.nlevels):
        nx, ny, nz = geometry.dims(lv)
        A = build_matrix(nx, ny, nz)
        f2c = None
        if lv + 1 < geometry.nlevels:
            cnx, cny, cnz = geometry.dims(lv + 1)
            cz, cy, cx = np.meshgrid(
                np.arange(cnz), np.arange(cny), np.arange(cnx), indexing="ij"
            )
            f2c = ((2 * cz * ny + 2 * cy) * nx + 2 * cx).ravel()
        levels.append(MgLevel(A=A, f2c=f2c))
    return levels


def mg_precondition(levels: list[MgLevel], r: np.ndarray, level: int = 0) -> np.ndarray:
    """Apply one MG V-cycle to *r*: the HPCG ``ComputeMG_ref`` recursion.

    Pre-smooth, compute residual, restrict (injection), recurse,
    prolongate (add), post-smooth.
    """
    A = levels[level].A
    x = np.zeros(A.shape[0])
    symgs(A, r, x)  # pre-smooth
    if level + 1 < len(levels):
        f2c = levels[level].f2c
        axf = A @ x
        rc = (r - axf)[f2c]  # restriction by injection
        xc = mg_precondition(levels, rc, level + 1)
        x[f2c] += xc  # prolongation by injection
        symgs(A, r, x)  # post-smooth
    return x


def cg_solve(
    levels: list[MgLevel],
    b: np.ndarray,
    max_iters: int = 50,
    tol: float = 0.0,
    preconditioned: bool = True,
) -> tuple[np.ndarray, list[float]]:
    """Preconditioned CG, reference-HPCG structure.

    Returns the solution and the residual-norm history (one entry per
    iteration, starting with the initial residual).
    """
    A = levels[0].A
    x = np.zeros_like(b)
    r = b - A @ x
    residuals = [float(np.linalg.norm(r))]
    p = np.zeros_like(b)
    rtz_old = 0.0
    for k in range(max_iters):
        z = mg_precondition(levels, r) if preconditioned else r.copy()
        rtz = float(r @ z)
        if k == 0:
            p[:] = z
        else:
            p[:] = z + (rtz / rtz_old) * p
        rtz_old = rtz
        ap = A @ p
        alpha = rtz / float(p @ ap)
        x += alpha * p
        r -= alpha * ap
        norm = float(np.linalg.norm(r))
        residuals.append(norm)
        if tol > 0 and norm <= tol * residuals[0]:
            break
    return x, residuals
