"""Access-stream generators for the HPCG kernels.

Each function yields :class:`~repro.simproc.isa.KernelBatch` objects
that describe exactly the memory traffic of the corresponding reference
loop, chunked into row blocks so the Folding report has intra-phase
resolution.  The sweep direction of SYMGS is encoded in the patterns:
the forward sweep ascends the matrix arrays and the solution vector,
the backward sweep descends — producing the a1/a2 (and d1/d2) address
ramps of the paper's Figure 1.

:class:`StencilGatherPattern` models the ``x[mtxIndL[i][j]]`` gathers:
procedurally generated 27-point-stencil column indices, including the
mapping of out-of-rank z-neighbours onto the halo entries appended
after the local rows (the ghost/bottom/top regions of the figure).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memsim.patterns import AccessPattern, Locality, MemOp, SequentialPattern
from repro.simproc.calibration import KERNEL_MLP
from repro.simproc.isa import KernelBatch
from repro.vmem.callstack import Frame
from repro.workloads.hpcg.problem import LevelLayout

__all__ = [
    "KernelCosts",
    "StencilGatherPattern",
    "dot_batches",
    "mg_transfer_batches",
    "spmv_batches",
    "symgs_sweep_batches",
    "waxpby_batches",
]

#: source locations of the reference kernels' hot loops
SRC_SYMGS_FWD = Frame("ComputeSYMGS_ref", "ComputeSYMGS_ref.cpp", 84)
SRC_SYMGS_BWD = Frame("ComputeSYMGS_ref", "ComputeSYMGS_ref.cpp", 105)
SRC_SPMV = Frame("ComputeSPMV_ref", "ComputeSPMV_ref.cpp", 60)
SRC_RESTRICT = Frame("ComputeRestriction_ref", "ComputeRestriction_ref.cpp", 47)
SRC_PROLONG = Frame("ComputeProlongation_ref", "ComputeProlongation_ref.cpp", 45)
SRC_DOT = Frame("ComputeDotProduct_ref", "ComputeDotProduct_ref.cpp", 55)
SRC_WAXPBY = Frame("ComputeWAXPBY_ref", "ComputeWAXPBY_ref.cpp", 54)


@dataclass(frozen=True)
class KernelCosts:
    """Instruction-mix calibration of the reference loops.

    ``instructions_per_row = 27 * instr_per_nnz + row_overhead``; the
    default lands the simulated MIPS in the paper's regime (≈1000 MIPS
    in SYMGS, ≈1300–1500 in SPMV, IPC ≈ 0.6 at 2.5 GHz).
    """

    instr_per_nnz: float = 4.0
    row_overhead: float = 14.0
    branches_per_nnz: float = 1.0
    branches_per_row: float = 2.0
    #: instructions per element of the simple vector kernels
    instr_per_vec_elem: float = 6.0

    def row_instructions(self, nrows: int, nnz_per_row: int = 27) -> int:
        return int(nrows * (nnz_per_row * self.instr_per_nnz + self.row_overhead))

    def row_branches(self, nrows: int, nnz_per_row: int = 27) -> int:
        return int(nrows * (nnz_per_row * self.branches_per_nnz + self.branches_per_row))


@dataclass(frozen=True)
class StencilGatherPattern(AccessPattern):
    """Gathers ``x[col]`` for every (row, stencil-neighbour) pair.

    Parameters
    ----------
    base:
        Byte address of the gathered vector.
    row0, nrows_block:
        Row block covered by this pattern.
    nx, ny, nz:
        Grid dimensions at this level.
    has_bottom, has_top:
        Whether out-of-grid z-neighbours map onto halo entries
        (appended after the ``nx*ny*nz`` local entries: bottom plane
        first, then top plane) or clip to the row itself.
    direction:
        +1 ascends rows (forward sweep), -1 descends.
    """

    base: int
    row0: int
    nrows_block: int
    nx: int
    ny: int
    nz: int
    has_bottom: bool = False
    has_top: bool = False
    direction: int = 1
    elem_size: int = 8
    op: MemOp = MemOp.LOAD

    def __post_init__(self) -> None:
        if self.direction not in (1, -1):
            raise ValueError(f"direction must be ±1, got {self.direction}")
        if self.row0 < 0 or self.nrows_block < 0:
            raise ValueError("row block must be non-negative")
        if self.row0 + self.nrows_block > self.nx * self.ny * self.nz:
            raise ValueError("row block exceeds the grid")

    @property
    def count(self) -> int:
        return 27 * self.nrows_block

    @property
    def nrows_total(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def plane(self) -> int:
        return self.nx * self.ny

    def addresses_at(self, offsets: np.ndarray) -> np.ndarray:
        off = self._check_offsets(offsets)
        step = off // 27
        if self.direction == 1:
            row = self.row0 + step
        else:
            row = self.row0 + (self.nrows_block - 1) - step
        k = off % 27
        dz = k // 9 - 1
        dy = (k // 3) % 3 - 1
        dx = k % 3 - 1
        plane = self.plane
        iz, rem = np.divmod(row, plane)
        iy, ix = np.divmod(rem, self.nx)
        cx, cy, cz = ix + dx, iy + dy, iz + dz
        # x/y out of the local grid: HPCG has no neighbour there with a
        # 1-D z decomposition — the stencil entry does not exist; model
        # the access as the row's own entry (diagonal) like the clipped
        # operator does.
        col = cz * plane + cy * self.nx + cx
        invalid_xy = (cx < 0) | (cx >= self.nx) | (cy < 0) | (cy >= self.ny)
        col = np.where(invalid_xy, row, col)
        # z out of the local grid: halo entries (if a neighbour exists).
        below = (~invalid_xy) & (cz < 0)
        above = (~invalid_xy) & (cz >= self.nz)
        n = self.nrows_total
        halo_cursor = n
        if self.has_bottom:
            col = np.where(below, halo_cursor + cy * self.nx + cx, col)
            halo_cursor += plane
        else:
            col = np.where(below, row, col)
        if self.has_top:
            col = np.where(above, halo_cursor + cy * self.nx + cx, col)
        else:
            col = np.where(above, row, col)
        return np.uint64(self.base) + col.astype(np.uint64) * np.uint64(self.elem_size)

    def locality(self) -> Locality:
        plane = self.plane
        lo_row = max(0, self.row0 - plane)
        hi_row = min(self.nrows_total, self.row0 + self.nrows_block + plane)
        # Halo entries touched by boundary blocks sit above nrows_total.
        touches_bottom = self.has_bottom and self.row0 < plane
        touches_top = (
            self.has_top and self.row0 + self.nrows_block > self.nrows_total - plane
        )
        hi_entry = hi_row
        if touches_bottom or touches_top:
            hi_entry = self.nrows_total + plane * (
                (1 if self.has_bottom else 0) + (1 if touches_top and self.has_top else 0)
            )
        unique = (hi_row - lo_row) + plane * (int(touches_bottom) + int(touches_top))
        return Locality(
            lo=self.base + lo_row * self.elem_size,
            hi=self.base + max(hi_entry, hi_row) * self.elem_size,
            unique_bytes=unique * self.elem_size,
            count=self.count,
            working_set_bytes=3 * plane * self.elem_size,
            kind="gather",
            direction=self.direction,
        )


def _row_blocks(nrows: int, blocks: int, direction: int = 1):
    """Split ``[0, nrows)`` into block index ranges, in sweep order."""
    bounds = np.linspace(0, nrows, max(1, blocks) + 1).astype(np.int64)
    pairs = [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(len(bounds) - 1)
        if bounds[i + 1] > bounds[i]
    ]
    return pairs if direction == 1 else pairs[::-1]


def _matrix_stream(layout: LevelLayout, r0: int, r1: int, direction: int):
    """The kernel-phase matrix traffic.

    The per-row arrays interleave in memory (indL, values, indG chunks
    repeat with the combined row stride), so sweeping the rows streams
    the whole interleaved region — which is why the paper can say the
    sweeps "traverse the whole data structure" even though the kernels
    never read ``mtxIndG``.  The stream is modeled as one unit-stride
    pass over the region; the unread ``indG`` bytes inflate the modeled
    traffic slightly, which the fitted per-kernel MLP absorbs (see
    :mod:`repro.simproc.calibration`).
    """
    n = r1 - r0
    stream = SequentialPattern(
        layout.matrix_base + r0 * layout.row_stride,
        n * layout.row_stride // 8,
        8,
        direction=direction,
    )
    return (stream,)


def symgs_sweep_batches(
    layout: LevelLayout,
    rhs_addr: int,
    x_addr: int,
    direction: int,
    blocks: int = 8,
    costs: KernelCosts | None = None,
    mlp: float | None = None,
    label: str | None = None,
):
    """One Gauss–Seidel sweep (forward or backward) over a level.

    Per row: read the row's matrix values and local indices, gather
    ``x`` at the 27 stencil columns, read the rhs entry, store the
    updated ``x`` entry.
    """
    costs = costs or KernelCosts()
    if direction not in (1, -1):
        raise ValueError("direction must be ±1")
    key = "symgs_forward" if direction == 1 else "symgs_backward"
    mlp = mlp if mlp is not None else KERNEL_MLP[key]
    label = label or key
    source = SRC_SYMGS_FWD if direction == 1 else SRC_SYMGS_BWD
    for r0, r1 in _row_blocks(layout.nrows, blocks, direction):
        n = r1 - r0
        matrix = _matrix_stream(layout, r0, r1, direction)
        gather = StencilGatherPattern(
            x_addr, r0, n, layout.nx, layout.ny, layout.nz,
            layout.has_bottom, layout.has_top, direction,
        )
        rhs = SequentialPattern(rhs_addr + r0 * 8, n, 8, direction=direction)
        xw = SequentialPattern(
            x_addr + r0 * 8, n, 8, direction=direction, op=MemOp.STORE
        )
        yield KernelBatch(
            label=label,
            patterns=matrix + (gather, rhs, xw),
            instructions=costs.row_instructions(n),
            branches=costs.row_branches(n),
            mlp=mlp,
            source=source,
            flops=2 * 27 * n,
        )


def spmv_batches(
    layout: LevelLayout,
    x_addr: int,
    y_addr: int,
    blocks: int = 8,
    costs: KernelCosts | None = None,
    mlp: float | None = None,
    label: str = "spmv",
):
    """``y = A x``: per row read values/indices, gather x, store y."""
    costs = costs or KernelCosts()
    mlp = mlp if mlp is not None else KERNEL_MLP["spmv"]
    for r0, r1 in _row_blocks(layout.nrows, blocks, 1):
        n = r1 - r0
        matrix = _matrix_stream(layout, r0, r1, 1)
        gather = StencilGatherPattern(
            x_addr, r0, n, layout.nx, layout.ny, layout.nz,
            layout.has_bottom, layout.has_top, 1,
        )
        yw = SequentialPattern(y_addr + r0 * 8, n, 8, op=MemOp.STORE)
        yield KernelBatch(
            label=label,
            patterns=matrix + (gather, yw),
            instructions=costs.row_instructions(n),
            branches=costs.row_branches(n),
            mlp=mlp,
            source=SRC_SPMV,
            flops=2 * 27 * n,
        )


def mg_transfer_batches(
    fine: LevelLayout,
    coarse: LevelLayout,
    kind: str,
    fine_vec: int,
    fine_aux: int,
    coarse_vec: int,
    costs: KernelCosts | None = None,
):
    """Grid-transfer traffic.

    ``kind="restrict"``: ``rc[c] = rf[f2c[c]] - Axf[f2c[c]]`` — strided
    reads of two fine vectors, sequential store of the coarse one.
    ``kind="prolong"``: ``xf[f2c[c]] += xc[c]`` — strided update of the
    fine vector from a sequential coarse read.
    """
    costs = costs or KernelCosts()
    n = coarse.nrows
    stride = (fine.nrows // coarse.nrows) * 8  # ≈ 8 rows per coarse row
    if kind == "restrict":
        patterns = (
            SequentialPattern(fine_vec, fine.nrows, 8),  # rf streamed
            SequentialPattern(fine_aux, fine.nrows, 8),  # Axf streamed
            SequentialPattern(coarse_vec, n, 8, op=MemOp.STORE),
        )
        source = SRC_RESTRICT
    elif kind == "prolong":
        patterns = (
            SequentialPattern(coarse_vec, n, 8),
            SequentialPattern(fine_vec, fine.nrows, 8, op=MemOp.STORE),
        )
        source = SRC_PROLONG
    else:
        raise ValueError(f"unknown transfer kind {kind!r}")
    del stride  # injection touches whole fine planes; modeled as streams
    total = sum(p.count for p in patterns)
    yield KernelBatch(
        label=f"mg_{kind}",
        patterns=patterns,
        instructions=int(total * costs.instr_per_vec_elem),
        branches=n,
        mlp=KERNEL_MLP["default"],
        source=source,
        flops=n,
    )


def dot_batches(a_addr: int, b_addr: int, n: int, costs: KernelCosts | None = None):
    """``ComputeDotProduct_ref``: two streamed reads."""
    costs = costs or KernelCosts()
    patterns = (
        SequentialPattern(a_addr, n, 8),
        SequentialPattern(b_addr, n, 8),
    )
    yield KernelBatch(
        label="dot",
        patterns=patterns,
        instructions=int(2 * n * costs.instr_per_vec_elem),
        branches=n // 4,
        mlp=KERNEL_MLP["default"],
        source=SRC_DOT,
        flops=2 * n,
    )


def waxpby_batches(
    w_addr: int, x_addr: int, y_addr: int, n: int, costs: KernelCosts | None = None
):
    """``ComputeWAXPBY_ref``: ``w = a*x + b*y``."""
    costs = costs or KernelCosts()
    patterns = (
        SequentialPattern(x_addr, n, 8),
        SequentialPattern(y_addr, n, 8),
        SequentialPattern(w_addr, n, 8, op=MemOp.STORE),
    )
    yield KernelBatch(
        label="waxpby",
        patterns=patterns,
        instructions=int(3 * n * costs.instr_per_vec_elem),
        branches=n // 4,
        mlp=KERNEL_MLP["default"],
        source=SRC_WAXPBY,
        flops=2 * n,
    )
