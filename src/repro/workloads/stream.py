"""STREAM-triad workload: ``a[i] = b[i] + s * c[i]``.

The canonical bandwidth microbenchmark — two load streams, one store
stream, perfect spatial locality.  Used by the quickstart example and
by tests as the simplest workload whose folded view has an obvious
ground truth (three clean address ramps, flat counter rates).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.extrae.tracer import Tracer
from repro.memsim.patterns import MemOp, SequentialPattern
from repro.simproc.isa import KernelBatch
from repro.vmem.callstack import CallStack, Frame
from repro.workloads.base import Workload

__all__ = ["StreamConfig", "StreamWorkload"]


@dataclass(frozen=True)
class StreamConfig:
    """Array length (elements), iterations, and chunking."""

    n: int = 1 << 20
    iterations: int = 10
    blocks: int = 8
    instr_per_elem: float = 6.0
    mlp: float = 10.0


class StreamWorkload(Workload):
    """Triad over three separately allocated arrays."""

    name = "stream"

    def __init__(self, config: StreamConfig | None = None) -> None:
        self.config = config or StreamConfig()
        self.arrays: dict[str, int] = {}

    def setup(self, tracer: Tracer) -> None:
        nbytes = self.config.n * 8
        for i, name in enumerate(("a", "b", "c")):
            site = CallStack(
                (Frame("main", "stream.c", 170 + i),)
            )
            self.arrays[name] = tracer.allocator.malloc(nbytes, site)
        tracer.trace.metadata.update({"n": self.config.n, "iterations": self.config.iterations})

    def run(self, tracer: Tracer) -> None:
        cfg = self.config
        bounds = [cfg.n * i // cfg.blocks for i in range(cfg.blocks + 1)]
        src = Frame("triad", "stream.c", 317)
        for _ in range(cfg.iterations):
            tracer.iteration("triad")
            with tracer.region("triad", src):
                for lo, hi in zip(bounds, bounds[1:]):
                    n = hi - lo
                    if n == 0:
                        continue
                    patterns = (
                        SequentialPattern(self.arrays["b"] + lo * 8, n, 8),
                        SequentialPattern(self.arrays["c"] + lo * 8, n, 8),
                        SequentialPattern(
                            self.arrays["a"] + lo * 8, n, 8, op=MemOp.STORE
                        ),
                    )
                    tracer.execute(
                        KernelBatch(
                            label="triad",
                            patterns=patterns,
                            instructions=int(3 * n * cfg.instr_per_elem),
                            branches=n // 4,
                            mlp=cfg.mlp,
                            source=src,
                            flops=2 * n,
                        )
                    )
