"""Workload protocol.

A workload first *sets up* its data objects through the tracer's
allocator (so allocation interception sees them), then *runs*, emitting
instrumented regions, iteration markers and kernel batches.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.extrae.tracer import Tracer

__all__ = ["Workload"]


class Workload(ABC):
    """Base class for traceable workloads."""

    #: short name used in trace metadata and reports
    name: str = "workload"

    @abstractmethod
    def setup(self, tracer: Tracer) -> None:
        """Allocate data objects and declare static symbols."""

    @abstractmethod
    def run(self, tracer: Tracer) -> None:
        """Execute the instrumented workload on the tracer's machine."""

    def trace(self, tracer: Tracer):
        """Convenience: setup, run, finalize; returns the trace."""
        tracer.trace.metadata["workload"] = self.name
        self.setup(tracer)
        self.run(tracer)
        return tracer.finalize()
