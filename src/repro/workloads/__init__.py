"""Workloads that drive the simulated machine through the tracer.

The paper evaluates HPCG 3.0 (:mod:`repro.workloads.hpcg`) — a full
reproduction including problem generation with the reference code's
per-row allocation behaviour, the SYMGS/SPMV/MG/CG kernel structure and
model-driven access streams.  Smaller workloads exercise the tool chain
on other archetypes: :mod:`repro.workloads.stream` (bandwidth sweeps),
:mod:`repro.workloads.randomaccess` (GUPS-style latency-bound random
access) and :mod:`repro.workloads.stencil` (2-D Jacobi).
"""

from repro.workloads.base import Workload
from repro.workloads.hpcg import HpcgConfig, HpcgWorkload
from repro.workloads.randomaccess import RandomAccessWorkload
from repro.workloads.stencil import StencilWorkload
from repro.workloads.stream import StreamWorkload

__all__ = [
    "HpcgConfig",
    "HpcgWorkload",
    "RandomAccessWorkload",
    "StencilWorkload",
    "StreamWorkload",
    "Workload",
]
