"""GUPS-style random-access workload.

Latency-bound updates at uniformly random table locations: the polar
opposite of HPCG's streaming sweeps.  In the folded address view the
samples fill the table's address band uniformly instead of forming
ramps, and the counter view shows a near-1 L3 miss rate per update —
useful both as a tool demonstration and as a stress test for the
random-pattern path of the analytic engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.extrae.tracer import Tracer
from repro.memsim.patterns import MemOp, RandomPattern
from repro.simproc.isa import KernelBatch
from repro.vmem.callstack import CallStack, Frame
from repro.workloads.base import Workload

__all__ = ["RandomAccessConfig", "RandomAccessWorkload"]


@dataclass(frozen=True)
class RandomAccessConfig:
    """Table size (bytes), updates per iteration, iterations."""

    table_bytes: int = 1 << 24
    updates_per_iteration: int = 1 << 16
    iterations: int = 8
    instr_per_update: float = 10.0
    mlp: float = 4.0
    seed: int = 12345


class RandomAccessWorkload(Workload):
    """Read-modify-write at random table offsets."""

    name = "randomaccess"

    def __init__(self, config: RandomAccessConfig | None = None) -> None:
        self.config = config or RandomAccessConfig()
        self.table = 0

    def setup(self, tracer: Tracer) -> None:
        site = CallStack((Frame("main", "gups.c", 88),))
        self.table = tracer.allocator.malloc(self.config.table_bytes, site)
        tracer.trace.metadata.update(
            {"table_bytes": self.config.table_bytes,
             "updates": self.config.updates_per_iteration}
        )

    def run(self, tracer: Tracer) -> None:
        cfg = self.config
        src = Frame("update_table", "gups.c", 133)
        for it in range(cfg.iterations):
            tracer.iteration("gups")
            with tracer.region("update_table", src):
                load = RandomPattern(
                    self.table, cfg.table_bytes, cfg.updates_per_iteration,
                    elem_size=8, seed=cfg.seed + it,
                )
                store = RandomPattern(
                    self.table, cfg.table_bytes, cfg.updates_per_iteration,
                    elem_size=8, op=MemOp.STORE, seed=cfg.seed + it,
                )
                tracer.execute(
                    KernelBatch(
                        label="gups",
                        patterns=(load, store),
                        instructions=int(
                            2 * cfg.updates_per_iteration * cfg.instr_per_update
                        ),
                        branches=cfg.updates_per_iteration // 2,
                        mlp=cfg.mlp,
                        source=src,
                    )
                )
