"""2-D 5-point Jacobi stencil workload.

A ping-pong Jacobi iteration over two grids: forward sweeps only, so
its folded address view is a pair of alternating ramps — a useful
contrast with HPCG's forward+backward Gauss–Seidel and the workload
used by the alloc-grouping example (its row allocations can be made
deliberately small to trigger the threshold problem).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.extrae.tracer import Tracer
from repro.memsim.patterns import MemOp, SequentialPattern
from repro.simproc.isa import KernelBatch
from repro.vmem.callstack import CallStack, Frame
from repro.workloads.base import Workload

__all__ = ["StencilConfig", "StencilWorkload"]


@dataclass(frozen=True)
class StencilConfig:
    """Grid dimensions, iterations, and allocation granularity.

    With ``rows_allocated_individually=True`` each grid row is its own
    small allocation (like HPCG's per-row arrays); with ``wrap_rows``
    those are wrapped into one named group.
    """

    nx: int = 512
    ny: int = 512
    iterations: int = 10
    blocks: int = 8
    rows_allocated_individually: bool = False
    wrap_rows: bool = True
    instr_per_point: float = 9.0
    mlp: float = 8.0


class StencilWorkload(Workload):
    """Jacobi: ``dst[i,j] = 0.25 * (src up/down/left/right)``."""

    name = "stencil"

    def __init__(self, config: StencilConfig | None = None) -> None:
        self.config = config or StencilConfig()
        self.grids: list[int] = []

    def setup(self, tracer: Tracer) -> None:
        cfg = self.config
        row_bytes = cfg.nx * 8
        for g in range(2):
            site = CallStack((Frame("allocate_grid", "stencil.c", 42 + g),))
            if cfg.rows_allocated_individually:
                if cfg.wrap_rows:
                    with tracer.wrap_allocations(f"{42 + g}_stencil.c"):
                        run = tracer.allocator.malloc_run(cfg.ny, row_bytes, site)
                else:
                    run = tracer.allocator.malloc_run(cfg.ny, row_bytes, site)
                self.grids.append(run.base)
                # Row stride includes the allocator header.
                self._row_stride = run.stride
            else:
                self.grids.append(tracer.allocator.malloc(cfg.ny * row_bytes, site))
                self._row_stride = row_bytes
        tracer.trace.metadata.update({"nx": cfg.nx, "ny": cfg.ny})

    def run(self, tracer: Tracer) -> None:
        cfg = self.config
        src_frame = Frame("jacobi_sweep", "stencil.c", 77)
        rows_per_block = max(1, cfg.ny // cfg.blocks)
        for it in range(cfg.iterations):
            tracer.iteration("jacobi")
            src, dst = self.grids[it % 2], self.grids[(it + 1) % 2]
            with tracer.region("jacobi_sweep", src_frame):
                for r0 in range(0, cfg.ny, rows_per_block):
                    r1 = min(r0 + rows_per_block, cfg.ny)
                    n = (r1 - r0) * cfg.nx
                    # Source rows r0-1..r1+1 stream through once,
                    # clamped to the grid (the last row's chunk ends at
                    # its data, not at the next chunk header).
                    lo_row = max(0, r0 - 1)
                    hi_row = min(r1 + 1, cfg.ny)
                    src_end = (hi_row - 1) * self._row_stride + cfg.nx * 8
                    dst_end = (r1 - 1) * self._row_stride + cfg.nx * 8
                    patterns = (
                        SequentialPattern(
                            src + lo_row * self._row_stride,
                            (src_end - lo_row * self._row_stride) // 8,
                            8,
                        ),
                        SequentialPattern(
                            dst + r0 * self._row_stride,
                            (dst_end - r0 * self._row_stride) // 8,
                            8,
                            op=MemOp.STORE,
                        ),
                    )
                    tracer.execute(
                        KernelBatch(
                            label="jacobi",
                            patterns=patterns,
                            instructions=int(n * cfg.instr_per_point),
                            branches=n // 8,
                            mlp=cfg.mlp,
                            source=src_frame,
                            flops=4 * n,
                        )
                    )
