"""Engine registry: build a memory engine from its fidelity-mode name.

Three fidelity modes share the ``run_pattern`` interface (see DESIGN.md,
"Fidelity modes"):

* ``precise`` — per-access set-associative LRU simulation
  (:class:`~repro.memsim.hierarchy.PreciseEngine`);
* ``vectorized`` — batch replay of the same hierarchy over whole
  address blocks (:class:`~repro.memsim.vectorized.VectorizedEngine`),
  bit-identical to ``precise`` and an order of magnitude faster;
* ``analytic`` — closed-form streaming-regime model
  (:class:`~repro.memsim.analytic.AnalyticEngine`).

The pipeline, CLI and machine resolve engine names through
:func:`make_engine` so every entry point accepts the same set.
"""

from __future__ import annotations

import numpy as np

from repro.memsim.analytic import AnalyticEngine
from repro.memsim.hierarchy import HierarchyConfig, PreciseEngine
from repro.memsim.vectorized import VectorizedEngine

__all__ = ["ENGINE_NAMES", "make_engine"]

_ENGINES = {
    "precise": PreciseEngine,
    "vectorized": VectorizedEngine,
    "analytic": AnalyticEngine,
}

#: Valid values for every ``engine=`` knob, in fidelity order.
ENGINE_NAMES = tuple(_ENGINES)


def make_engine(
    name: str,
    config: HierarchyConfig | None = None,
    rng: np.random.Generator | None = None,
):
    """Instantiate the engine called *name* over *config*.

    Raises ``ValueError`` for unknown names, listing the valid ones.
    """
    try:
        cls = _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"engine must be one of {', '.join(ENGINE_NAMES)}; got {name!r}"
        ) from None
    return cls(config, rng=rng)
