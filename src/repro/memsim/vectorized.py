"""Vectorized batch memory engine: PreciseEngine semantics over arrays.

The per-access engine (:class:`repro.memsim.hierarchy.PreciseEngine`)
walks every collapsed line run through ``OrderedDict``-based caches —
exact, but bounded by the Python interpreter to ~1 M accesses/second,
which confines precise-fidelity runs to small problems (DESIGN.md,
"Scale notes").  This module re-implements the *same* machine model as
bulk NumPy computation and produces **bit-identical**
:class:`~repro.memsim.hierarchy.PatternResult`\\ s.

The key observation is that the hierarchy is a feed-forward cascade:

* **L1** content depends only on the line stream (prefetches never fill
  L1), so its hit/miss outcome can be computed for a whole block first;
* the **prefetcher** observes the ordered L1-miss subsequence only;
* **L2** sees the L1 misses plus the prefetch-fill candidates;
* **L3** sees the L2 misses, the candidates that filled L2, and — for
  store patterns — one dirty-mark event per access (stores only dirty
  the last level; evicting a dirty line there is a DRAM writeback).

Each level is one :class:`_SetArrayCache`: the ways of every set as a
recency-ordered tag matrix (column 0 = LRU victim).  An ordered event
batch is partitioned by cache set and replayed either

* in closed form when every event line is distinct and non-resident
  (the streaming regime: n inserts into a set are a single shift of its
  recency row — no iteration at all), or
* by a *lockstep* loop over the in-set event position: iteration ``t``
  applies event ``t`` of **every** set at once with array ops, so the
  Python-level loop count drops from "number of accesses" to "events in
  the busiest set".

Equivalence against the precise engine is enforced by
``tests/memsim/test_vectorized_equivalence.py`` (property-based) and the
three-way A4 cross-check in ``benchmarks/test_ablation_engine.py``.
"""

from __future__ import annotations

import numpy as np

from repro.memsim.cache import CacheConfig
from repro.memsim.datasource import DataSource
from repro.memsim.hierarchy import HierarchyConfig, PatternResult
from repro.memsim.patterns import AccessPattern, MemOp
from repro.memsim.tlb import TlbConfig
from repro.util.bitops import ilog2

__all__ = ["VectorizedEngine"]

#: Expansion block size used when materializing pattern addresses.
#: Any partition yields identical results (a run split at a block edge
#: re-probes an MRU line: pure L1 hits, no state or counter drift), so
#: the block only bounds peak memory.
_BLOCK = 1 << 20

# Event kinds understood by _SetArrayCache.process.
_DEMAND = 0        # probe; on miss count it and fill (clean)
_PF = 1            # prefetch: fill only if absent; no refresh when present
_DIRTY = 2         # store dirty-ensure: mark dirty, fill dirty if absent,
                   # no recency refresh when present (Cache.mark_dirty)
_DEMAND_DIRTY = 3  # _DEMAND immediately followed by _DIRTY on the same line

_NO_LINE = np.int64(-1)

_IOTA = np.empty(0, dtype=np.int64)


def _iota(n: int) -> np.ndarray:
    """Shared read-only ``arange(n)`` (callers must not write into it)."""
    global _IOTA
    if _IOTA.size < n:
        _IOTA = np.arange(max(n, _BLOCK), dtype=np.int64)
    return _IOTA[:n]


class _SetArrayCache:
    """One set-associative LRU level as recency-ordered way matrices.

    ``ways[s]`` holds set *s*'s residents ordered by recency (column 0 =
    LRU victim, last column = MRU) with the line's dirty bit packed into
    bit 0 (``entry = line << 1 | dirty``); empty ways are ``_EMPTY`` and
    kept leftmost.

    Batches are pre-collapsed: consecutive events of one set that touch
    the *same* line reduce to a single composite event, because after
    the first one the line is certainly resident, so the rest are hits
    whose only effects are "promote to MRU if any demand" and "set the
    dirty bit if any store".  Collapsing is what makes streaming event
    streams (probe + prefetch pairs on one line) all-distinct and
    thereby eligible for the closed-form all-miss path.
    """

    _EMPTY = np.int64(-2)  # (-1 << 1) | clean

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._assoc = config.associativity
        self._set_mask = np.int64(config.n_sets - 1)
        self.ways = np.full((config.n_sets, self._assoc), self._EMPTY, dtype=np.int64)
        self._any_filled = False
        self._any_dirty = False
        #: probe misses (same meaning as ``CacheStats.misses``)
        self.misses = 0
        #: lines installed by the prefetcher (``CacheStats.prefetch_fills``)
        self.prefetch_fills = 0

    def flush(self) -> None:
        self.ways.fill(self._EMPTY)
        self._any_filled = False
        self._any_dirty = False

    # ------------------------------------------------------------------
    def process(
        self,
        lines: np.ndarray,
        kinds: np.ndarray | None = None,
        dirty_const: bool = False,
    ):
        """Replay an ordered event batch; returns ``(hit, victim_dirty)``.

        ``hit[i]`` is whether event *i*'s line was resident when the
        event was applied; ``victim_dirty[i]`` whether its fill evicted
        a dirty line.  Events of different sets commute, so only the
        relative order *within* each set is preserved.

        ``kinds=None`` is the all-demand fast path for run-collapsed
        streams (L1, TLB): every event promotes, consecutive lines are
        already distinct, and *dirty_const* supplies the store flag for
        a single-level hierarchy.
        """
        n = int(lines.size)
        hit = np.empty(n, dtype=bool)
        victim_dirty = np.empty(n, dtype=bool)
        if n == 0:
            return hit, victim_dirty
        # A batch without dirtying events against a cache without dirty
        # lines cannot produce dirty victims: victim_dirty stays False
        # everywhere and all dirty bookkeeping below is skipped.
        can_dirty = dirty_const or (
            kinds is not None and int(kinds.max()) >= _DIRTY
        )
        vd_possible = can_dirty or self._any_dirty
        sets = (lines & self._set_mask).astype(np.int32)
        order = np.argsort(sets, kind="stable")
        ls = lines[order]
        if kinds is None:
            # Caller guarantees a run-collapsed all-demand stream: every
            # event is its own group.
            gi = None
            glines = ls
            gk = None
            gpromote = gdirty = None
            gsets = sets[order]
        else:
            ks = kinds[order]
            # Collapse consecutive same-line events of a set (equal
            # lines imply equal sets, so adjacent equal lines in
            # set-major order are consecutive events of one set): the
            # first event decides hit/miss, the rest are guaranteed
            # hits whose only effects are promote/dirty.
            gfirst = np.empty(n, dtype=bool)
            gfirst[0] = True
            np.not_equal(ls[1:], ls[:-1], out=gfirst[1:])
            gi = np.nonzero(gfirst)[0]
            if can_dirty:
                promote = (ks == _DEMAND) | (ks == _DEMAND_DIRTY)
                dirtying = ks >= _DIRTY
            else:
                promote = ks == _DEMAND
                dirtying = None
            if gi.size == n:
                gi = None
                glines = ls
                gk = ks
                gpromote, gdirty = promote, dirtying
                gsets = sets[order]
            else:
                glines = ls[gi]
                gk = ks[gi]
                gpromote = np.logical_or.reduceat(promote, gi)
                gdirty = (
                    np.logical_or.reduceat(dirtying, gi) if can_dirty else None
                )
                gsets = sets[order[gi]]
        k = glines.size
        snew = np.empty(k, dtype=bool)
        snew[0] = True
        np.not_equal(gsets[1:], gsets[:-1], out=snew[1:])
        gstarts = np.nonzero(snew)[0]
        guniq = gsets[gstarts]
        gcounts = np.diff(np.append(gstarts, k))
        maxc = int(gcounts.max())
        ghit = np.zeros(k, dtype=bool)
        gvd = np.zeros(k, dtype=bool) if vd_possible else None
        done = False
        if maxc > 1:
            done = self._process_fresh(
                glines, gdirty, dirty_const, guniq, gstarts, gcounts, snew, gvd
            )
        if not done:
            if gpromote is None:
                gpromote = np.ones(k, dtype=bool)
                if dirty_const:
                    gdirty = np.ones(k, dtype=bool)
            self._process_lockstep(
                glines, gpromote, gdirty, guniq, gstarts, gcounts, maxc, ghit, gvd
            )
        self._any_filled = True
        if can_dirty:
            self._any_dirty = True
        # Only group leaders can miss or fill; stats come from the
        # (smaller) collapsed domain.
        if gk is None:
            self.misses += int(k - ghit.sum())
        else:
            leader_demand = (
                (gk == _DEMAND) | (gk == _DEMAND_DIRTY)
                if can_dirty
                else gk == _DEMAND
            )
            self.misses += int((leader_demand & ~ghit).sum())
            self.prefetch_fills += int(((gk == _PF) & ~ghit).sum())
        # Expand the per-group outcome back to per-event outcomes: the
        # non-leading events of a group all hit and never fill.
        if not vd_possible:
            victim_dirty.fill(False)
        if gi is None:
            hit[order] = ghit
            if vd_possible:
                victim_dirty[order] = gvd
        else:
            hs = np.ones(n, dtype=bool)
            hs[gi] = ghit
            hit[order] = hs
            if vd_possible:
                vs = np.zeros(n, dtype=bool)
                vs[gi] = gvd
                victim_dirty[order] = vs
        return hit, victim_dirty

    # -- closed-form path ----------------------------------------------
    def _process_fresh(
        self, glines, gdirty, dirty_const, guniq, gstarts, gcounts, snew, gvd
    ):
        """All-miss shortcut: applies iff every event line is distinct
        and absent, in which case each event is exactly one insert and
        the *j*-th insert of a set evicts that set's *j*-th virtual
        column — an original way for ``j < assoc``, else the batch's own
        insert *j - assoc* of the same set.  Returns False (leaving
        state untouched) when the batch does not qualify."""
        n = glines.size
        if self._any_filled:
            # Cheap reject first: probe a prefix before gathering all.
            probe = self.ways[glines[:256] & self._set_mask]
            if ((probe >> 1) == glines[:256, None]).any():
                return False
        # Distinctness: equal lines always map to the same set, so it
        # suffices per set.  Per-set monotone batches (any streaming or
        # strided sweep) are accepted with one diff; otherwise sort.
        if n > 1:
            d = np.diff(glines)
            inner = ~snew[1:]
            if ((d == 0) & inner).any():
                return False
            if not (((d > 0) | ~inner).all() or ((d < 0) | ~inner).all()):
                srt = np.sort(glines)
                if (srt[1:] == srt[:-1]).any():
                    return False
        if self._any_filled:
            resident = self.ways[glines & self._set_mask]
            if ((resident >> 1) == glines[:, None]).any():
                return False
        assoc = self._assoc
        k = guniq.size
        packed = glines << 1
        batch_dirty = gdirty is not None or dirty_const
        if gdirty is not None:
            packed |= gdirty
        elif dirty_const:
            packed |= 1
        if gvd is not None:
            # Victims of the first `assoc` inserts of a set are its old
            # ways (dirty only if the cache holds dirty lines at all);
            # later inserts evict the batch's own earlier inserts
            # (dirty only if the batch carries dirty events).
            col_idx = _iota(n) - np.repeat(gstarts, gcounts)
            early = col_idx < assoc
            if self._any_filled and self._any_dirty:
                row_early = np.repeat(guniq, np.minimum(gcounts, assoc))
                gvd[early] = (self.ways[row_early, col_idx[early]] & 1).astype(bool)
            if batch_dirty:
                late = np.nonzero(~early)[0]
                gvd[late] = (packed[late - assoc] & 1).astype(bool)
        # New state: the last `assoc` virtual columns of each set.
        vcol = gcounts[:, None] + np.arange(assoc)
        from_new = vcol >= assoc
        # Surviving old ways shift left by the set's insert count; the
        # clip keeps take_along_axis in bounds where inserts take over.
        rows = np.take_along_axis(
            self.ways[guniq], np.minimum(vcol, assoc - 1), axis=1
        )
        src = gstarts[:, None] + (vcol - assoc)
        rows[from_new] = packed[src[from_new]]
        self.ways[guniq] = rows
        return True

    # -- generic path ---------------------------------------------------
    def _process_lockstep(
        self, glines, gpromote, gdirty, guniq, gstarts, gcounts, maxc, ghit, gvd
    ) -> None:
        assoc = self._assoc
        jj = np.arange(assoc - 1)
        minc = int(gcounts.min())
        for t in range(maxc):
            if t < minc:
                idx = gstarts + t
                s = guniq
            else:
                act = gcounts > t
                idx = gstarts[act] + t
                s = guniq[act]
            rows = self.ways[s]
            line = glines[idx]
            eq = (rows >> 1) == line[:, None]
            h = eq.any(axis=1)
            ghit[idx] = h
            way = eq.argmax(axis=1)
            pro = gpromote[idx]
            dr = gdirty[idx] if gdirty is not None else None
            if dr is not None:
                # dirty-mark on a non-promoting hit: set bit 0 in place
                mark = h & dr & ~pro
                if mark.any():
                    rows[mark, way[mark]] |= 1
            insert = ~h
            if gvd is not None:
                gvd[idx] = insert & (rows[:, 0] & 1).astype(bool)
            chg = insert | (h & pro)
            if chg.any():
                rc = rows[chg]
                # Drop column `drop` (hit way, or the LRU/empty slot 0
                # for inserts) and append the surviving/new entry MRU.
                drop = np.where(h[chg], way[chg], 0)
                take = np.where(jj[None, :] < drop[:, None], jj[None, :], jj[None, :] + 1)
                rows_new = np.empty_like(rc)
                if assoc > 1:
                    rows_new[:, : assoc - 1] = np.take_along_axis(rc, take, axis=1)
                ar = np.arange(rc.shape[0])
                dc = dr[chg] if dr is not None else False
                rows_new[:, -1] = np.where(
                    h[chg], rc[ar, drop] | dc, (line[chg] << 1) | dc
                )
                rows[chg] = rows_new
            self.ways[s] = rows


class _BatchPrefetcher:
    """Vectorized twin of :class:`repro.memsim.prefetch.NextLinePrefetcher`.

    Stream detection for L1-miss *i* only looks at the ``history`` miss
    lines before it, so a batch reduces to one sliding-window comparison
    against the miss array (extended with the carried tail from earlier
    batches)."""

    _SENTINEL = np.int64(-(1 << 62))

    def __init__(self, degree: int = 2, history: int = 16) -> None:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = degree
        self.history = history
        self._recent = np.full(history, self._SENTINEL, dtype=np.int64)

    def on_miss_batch(self, miss_lines: np.ndarray):
        """Candidates per miss: ``(cand[k, degree], valid[k, degree])``.

        Column *d* holds the (d+1)-th line in stream direction, matching
        the emission order of ``NextLinePrefetcher.on_miss``."""
        k = int(miss_lines.size)
        deg = self.degree
        if k == 0:
            return (
                np.empty((0, deg), dtype=np.int64),
                np.empty((0, deg), dtype=bool),
            )
        hist = self.history
        ext = np.concatenate([self._recent, miss_lines])
        lo = miss_lines - 1
        # Miss i sits at ext[hist + i]; its history window is the `hist`
        # entries before it, i.e. lag j is the contiguous slice
        # ext[hist - j : hist - j + k].  A unit-stride stream resolves
        # almost entirely at lag 1; whatever remains (stream heads,
        # strides, random) is classified by gathering just those
        # misses' windows.  Per-lag contiguous compares cover the
        # mid-density regime more cheaply than one big strided
        # sliding-window reduction.
        asc = ext[hist - 1 : hist - 1 + k] == lo
        rem = np.nonzero(~asc)[0]
        if rem.size > k >> 3:
            for lag in range(2, hist + 1):
                asc |= ext[hist - lag : hist - lag + k] == lo
            rem = np.nonzero(~asc)[0]
            windows = np.lib.stride_tricks.sliding_window_view(ext[:-1], hist)
            desc = np.zeros(k, dtype=bool)
            if rem.size:
                wr = windows[rem]
                desc[rem] = (wr == (miss_lines[rem] + 1)[:, None]).any(axis=1)
        else:
            desc = np.zeros(k, dtype=bool)
            if rem.size:
                wr = np.lib.stride_tricks.sliding_window_view(ext[:-1], hist)[rem]
                asc[rem] = (wr == lo[rem, None]).any(axis=1)
                r2 = rem[~asc[rem]]
                if r2.size:
                    wr2 = np.lib.stride_tricks.sliding_window_view(ext[:-1], hist)[r2]
                    desc[r2] = (wr2 == (miss_lines[r2] + 1)[:, None]).any(axis=1)
        desc &= ~asc  # ascending streams win, like the scalar elif
        steps = np.arange(1, deg + 1, dtype=np.int64)
        cand = np.where(
            asc[:, None],
            miss_lines[:, None] + steps[None, :],
            miss_lines[:, None] - steps[None, :],
        )
        valid = asc[:, None] | (desc[:, None] & (cand >= 0))
        self._recent = ext[-hist:]
        return cand, valid

    def reset(self) -> None:
        self._recent.fill(self._SENTINEL)


class _BatchTlb:
    """Vectorized DTLB with :meth:`repro.memsim.tlb.Tlb.access_bulk` semantics."""

    def __init__(self, config: TlbConfig) -> None:
        self.config = config
        self._shift = int(config.page_size).bit_length() - 1
        self.page_shift = self._shift
        self._cache = _SetArrayCache(
            CacheConfig(
                "DTLB",
                size_bytes=config.entries * config.page_size,
                line_size=config.page_size,
                associativity=config.associativity,
            )
        )

    def access_block(self, addresses: np.ndarray) -> int:
        """Translate a block of addresses; returns the number of misses."""
        if addresses.size == 0:
            return 0
        pages = addresses.view(np.int64) >> self._shift
        return self._access_pages(pages)

    def access_line_runs(self, run_lines: np.ndarray, line_shift: int) -> int:
        """Translate a block given its collapsed line runs.

        Pages change only where lines change (the page size is a
        multiple of the line size), so the line-run stream carries every
        page transition of the full access stream and repeat touches of
        a page are idempotent LRU refreshes either way.
        """
        if run_lines.size == 0:
            return 0
        return self._access_pages(run_lines >> (self._shift - line_shift))

    def _access_pages(self, pages: np.ndarray) -> int:
        keep = np.empty(pages.size, dtype=bool)
        keep[0] = True
        np.not_equal(pages[1:], pages[:-1], out=keep[1:])
        run_pages = pages[keep]
        before = self._cache.misses
        self._cache.process(run_pages)
        return self._cache.misses - before

    def flush(self) -> None:
        self._cache.flush()


class VectorizedEngine:
    """Batch-exact counterpart of :class:`~repro.memsim.hierarchy.PreciseEngine`.

    Same constructor contract and ``run_pattern`` interface; results are
    bit-identical to the precise engine on any pattern sequence (the
    fidelity contract the A4 bench and the property suite enforce), at
    10–30× the throughput on streaming patterns.

    Parameters
    ----------
    config:
        Hierarchy configuration (up to three levels, like the precise
        engine's source classification supports).
    rng:
        Generator used only for latency jitter of sampled accesses.
    """

    name = "vectorized"

    def __init__(
        self,
        config: HierarchyConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config or HierarchyConfig()
        if len(self.config.levels) > 3:
            raise ValueError(
                "vectorized engine models at most three levels "
                f"(got {len(self.config.levels)})"
            )
        self.levels = [_SetArrayCache(c) for c in self.config.levels]
        self.line_size = self.config.levels[0].line_size
        self._line_shift = ilog2(self.line_size)
        self.tlb = _BatchTlb(self.config.tlb) if self.config.tlb is not None else None
        self.prefetcher = (
            _BatchPrefetcher(degree=self.config.prefetch_degree)
            if self.config.enable_prefetch
            else None
        )
        self._rng = rng

    # ------------------------------------------------------------------
    def run_pattern(
        self, pattern: AccessPattern, sample_offsets: np.ndarray | None = None
    ) -> PatternResult:
        """Execute every access of *pattern*; classify sampled offsets.

        ``sample_offsets`` must be sorted ascending access indices in
        ``[0, pattern.count)``; the returned ``sample_sources`` /
        ``sample_latencies`` align with it.
        """
        samples = (
            np.asarray(sample_offsets, dtype=np.int64)
            if sample_offsets is not None
            else np.empty(0, dtype=np.int64)
        )
        if samples.size and np.any(np.diff(samples) < 0):
            raise ValueError("sample_offsets must be sorted ascending")
        sample_src = np.zeros(samples.size, dtype=np.int64)

        n = pattern.count
        src_hist = np.zeros(max(int(s) for s in DataSource) + 1, dtype=np.int64)
        miss0 = [lv.misses + lv.prefetch_fills for lv in self.levels]
        store = pattern.op == MemOp.STORE
        l1_code = int(DataSource.L1)
        tlb_misses = 0
        dram_lines = 0
        writeback_lines = 0

        for lo in range(0, n, _BLOCK):
            hi = min(lo + _BLOCK, n)
            offs = _iota(hi) if lo == 0 else np.arange(lo, hi, dtype=np.int64)
            addrs = pattern.addresses_at(offs)
            # zero-copy reinterpret: addresses are < 2**63
            lines = addrs.view(np.int64) >> self._line_shift
            m = hi - lo
            # Collapse consecutive same-line accesses (repeats hit L1 by
            # construction — identical to the precise engine's collapse).
            keep = np.empty(m, dtype=bool)
            keep[0] = True
            np.not_equal(lines[1:], lines[:-1], out=keep[1:])
            run_starts = np.nonzero(keep)[0]
            run_lines = lines[run_starts]
            if self.tlb is not None:
                if self.tlb.page_shift >= self._line_shift:
                    tlb_misses += self.tlb.access_line_runs(
                        run_lines, self._line_shift
                    )
                else:  # pages smaller than lines: translate every access
                    tlb_misses += self.tlb.access_block(addrs)
            run_src, dram, wb = self._run_block(run_lines, store)
            dram_lines += dram
            writeback_lines += wb
            src_hist += np.bincount(run_src, minlength=src_hist.size)
            src_hist[l1_code] += m - run_starts.size
            a = np.searchsorted(samples, lo, side="left")
            b = np.searchsorted(samples, hi, side="left")
            if b > a:
                off = samples[a:b] - lo
                rid = np.searchsorted(run_starts, off, side="right") - 1
                sample_src[a:b] = np.where(
                    off == run_starts[rid], run_src[rid], l1_code
                )

        source_counts = {
            DataSource(i): int(c) for i, c in enumerate(src_hist) if c and i
        }
        level_misses = {
            lv.config.name: lv.misses + lv.prefetch_fills - m0
            for lv, m0 in zip(self.levels, miss0)
        }
        latencies = self.config.latency.sample(sample_src, self._rng)
        return PatternResult(
            count=n,
            level_misses=level_misses,
            source_counts=source_counts,
            sample_sources=sample_src,
            sample_latencies=latencies,
            tlb_misses=tlb_misses,
            dram_lines=dram_lines,
            writeback_lines=writeback_lines,
        )

    # ------------------------------------------------------------------
    def _run_block(self, run_lines: np.ndarray, store: bool):
        """Cascade one block of collapsed line runs through the levels.

        Returns ``(run_src, dram_lines, writeback_lines)`` where
        ``run_src[i]`` is the DataSource code that served run *i*.
        """
        nruns = int(run_lines.size)
        n_levels = len(self.levels)
        degree = self.prefetcher.degree if self.prefetcher is not None else 0
        # Per-access event slots: demand, then the prefetch candidates,
        # then the store dirty-mark — globally ordered sequence numbers.
        # nruns <= _BLOCK, so every sequence number fits int32 and the
        # event sort below runs the fast 4-byte radix.
        stride = degree + 2
        dram = 0
        wb = 0
        run_src = np.full(nruns, int(DataSource.DRAM), dtype=np.int64)
        run_idx = np.arange(nruns, dtype=np.int32)

        # ---- level 0: every run, prefetches never fill L1 ------------
        lvl0 = self.levels[0]
        if n_levels == 1:
            # L1 is also the last level: stores dirty it, misses are DRAM
            # traffic and dirty evictions are writebacks.
            l1_hit, vd = lvl0.process(run_lines, dirty_const=store)
            run_src[l1_hit] = int(DataSource.L1)
            dram += int((~l1_hit).sum())
            wb += int(vd.sum())
            if self.prefetcher is not None:
                self.prefetcher.on_miss_batch(run_lines[~l1_hit])
            return run_src, dram, wb

        l1_hit, _ = lvl0.process(run_lines)
        run_src[l1_hit] = int(DataSource.L1)
        miss1 = run_idx[~l1_hit]

        lvl1 = self.levels[1]
        last_is_l2 = n_levels == 2
        store_l2 = store and last_is_l2
        demand_lines1 = run_lines[miss1]
        # Candidate slots form a uniform [misses, degree] grid when every
        # slot carries an event.  Invalid slots (no stream detected) can
        # be kept in the grid as the row's own demand line: the demand
        # immediately precedes it in its set (candidates land in other
        # sets while n_sets > degree), so the dummy collapses into the
        # demand's group as a guaranteed-hit prefetch — a no-op carrying
        # no fill, stat, promote or dirty effect.  The uniform grid makes
        # every merge position a reshape instead of a sort or search.
        uniform = False
        if self.prefetcher is not None:
            cand, cand_valid = self.prefetcher.on_miss_batch(demand_lines1)
            uniform = not store_l2 and lvl1.config.n_sets > degree
            if uniform:
                cand_grid = np.where(cand_valid, cand, demand_lines1[:, None])
                cand_flat = cand_seq = None
            else:
                cand_flat = np.nonzero(cand_valid.ravel())[0].astype(np.int32)
                cand_lines = cand.ravel()[cand_flat]
                cand_seq = (
                    miss1[:, None] * stride + 1 + np.arange(degree, dtype=np.int32)
                ).ravel()[cand_flat]
        else:
            cand_flat = np.empty(0, dtype=np.int32)
            cand_lines = np.empty(0, dtype=np.int64)
            cand_seq = np.empty(0, dtype=np.int32)

        # ---- level 1: L1 misses + prefetch candidates ----------------
        miss2, pf_keep, vd_total2, vd_pf2 = self._level_events(
            level=lvl1,
            demand_runs=miss1,
            demand_lines=demand_lines1,
            pf_lines=cand_grid if uniform else cand_lines,
            pf_seq=cand_seq,
            stride=stride,
            degree=degree,
            run_lines=run_lines,
            nruns=nruns,
            store_here=store_l2,
            hit_code=int(DataSource.L2),
            run_src=run_src,
            pf_uniform=degree if uniform else None,
        )
        if last_is_l2:
            dram += int(miss2.size)
            # Demand fills and dirty repairs go through _fill_last and
            # account writebacks; a prefetch fill into a 2-level last
            # cache uses plain fill() and does not (hierarchy.py).
            wb += vd_total2 - vd_pf2
            return run_src, dram, wb

        # ---- level 2: L2 misses + prefetches that filled L2 ----------
        lvl2 = self.levels[2]
        if uniform:
            # pf_keep marks real fills only (dummies always hit).
            pf_filled = np.nonzero(pf_keep)[0].astype(np.int32)
            cand_lines3 = cand_grid.ravel()[pf_filled]
        else:
            pf_filled = cand_flat[pf_keep]
            cand_lines3 = cand_lines[pf_keep]
        pf_runs = miss1[pf_filled // degree] if pf_filled.size else pf_filled
        pf_seq3 = (
            pf_runs * stride + 1 + pf_filled % degree
            if pf_filled.size
            else pf_filled
        )
        miss3, pf_keep3, vd_total3, _ = self._level_events(
            level=lvl2,
            demand_runs=miss2,
            demand_lines=run_lines[miss2],
            pf_lines=cand_lines3,
            pf_seq=pf_seq3,
            stride=stride,
            degree=degree,
            run_lines=run_lines,
            nruns=nruns,
            store_here=store,
            hit_code=int(DataSource.L3),
            run_src=run_src,
        )
        # Demand full misses and prefetch fills into the (3-level) last
        # cache are DRAM line transfers; every last-level fill may write
        # back a dirty victim.
        dram += int(miss3.size) + int(np.count_nonzero(pf_keep3))
        wb += vd_total3
        return run_src, dram, wb

    def _level_events(
        self,
        level: _SetArrayCache,
        demand_runs: np.ndarray,
        demand_lines: np.ndarray,
        pf_lines: np.ndarray,
        pf_seq: np.ndarray,
        stride: int,
        degree: int,
        run_lines: np.ndarray,
        nruns: int,
        store_here: bool,
        hit_code: int,
        run_src: np.ndarray,
        pf_uniform: int | None = None,
    ):
        """Assemble, order and replay one level's event batch.

        Scatters ``hit_code`` into ``run_src`` for demand hits and
        returns ``(missed_runs, pf_keep, vd_total, vd_pf)``: the demand
        runs that missed here (ascending), the boolean mask over the pf
        part marking candidates that filled this level, and the dirty
        victim counts of all / of prefetch-caused fills.

        With ``pf_uniform=k``, ``pf_lines`` is a dense ``[nd, k]`` grid —
        every demand carries exactly *k* candidate events right after it
        (dummy slots hold the demand's own line; see ``_run_block``).
        The event order is then ``[demand, k candidates] * nd`` and all
        merge positions are reshapes instead of sorts or searches.
        """
        dirty_fold = store_here and (degree == 0 or level.config.n_sets > degree)
        nd = demand_runs.size
        npf = pf_lines.size
        if not store_here and npf == 0:
            # Demand events only, already in sequence order.
            hit, victim_dirty = level.process(demand_lines)
            run_src[demand_runs[hit]] = hit_code
            return (
                demand_runs[~hit],
                np.empty(0, dtype=bool),
                int(victim_dirty.sum()),
                0,
            )
        if pf_uniform is not None:
            step = pf_uniform + 1
            n_ev = nd * step
            ev_lines = np.empty(n_ev, dtype=np.int64)
            grid = ev_lines.reshape(nd, step)
            grid[:, 0] = demand_lines
            grid[:, 1:] = pf_lines
            ev_kinds = np.empty(n_ev, dtype=np.uint8)
            kgrid = ev_kinds.reshape(nd, step)
            kgrid[:, 0] = _DEMAND
            kgrid[:, 1:] = _PF
            hit, victim_dirty = level.process(ev_lines, ev_kinds)
            h = hit.reshape(nd, step)
            d_hit = h[:, 0]
            run_src[demand_runs[d_hit]] = hit_code
            missed_runs = demand_runs[~d_hit]
            pf_keep = ~h[:, 1:].ravel()
            vd = victim_dirty.reshape(nd, step)
            vd_pf = int(vd[:, 1:].sum())
            vd_total = vd_pf + int(vd[:, 0].sum())
            return missed_runs, pf_keep, vd_total, vd_pf
        if not store_here:
            # Demand and prefetch sequence ids are each strictly
            # ascending and disjoint (distinct per-access slots), so the
            # ordered event batch is a two-way merge: the final position
            # of an element is its own rank plus the count of
            # other-stream elements preceding it.  Cheaper than a radix
            # argsort and yields the part positions directly.
            demand_seq = demand_runs * stride
            d_pos = np.searchsorted(pf_seq, demand_seq) + _iota(nd)
            pf_pos = np.searchsorted(demand_seq, pf_seq) + _iota(npf)
            n_ev = nd + npf
            ev_lines = np.empty(n_ev, dtype=np.int64)
            ev_lines[d_pos] = demand_lines
            ev_lines[pf_pos] = pf_lines
            ev_kinds = np.empty(n_ev, dtype=np.uint8)
            ev_kinds[d_pos] = _DEMAND
            ev_kinds[pf_pos] = _PF
            hit, victim_dirty = level.process(ev_lines, ev_kinds)
        else:
            parts_lines = [demand_lines, pf_lines]
            parts_seq = [demand_runs * stride, pf_seq]
            demand_kind = _DEMAND_DIRTY if dirty_fold else _DEMAND
            parts_kinds = [
                np.full(nd, demand_kind, dtype=np.uint8),
                np.full(npf, _PF, dtype=np.uint8),
            ]
            # Dirty-mark every access that carries no demand event here
            # (folded into _DEMAND_DIRTY above when prefetch candidates
            # cannot alias the access's own set, i.e. n_sets > degree;
            # emitted as separate trailing events otherwise).
            dirty_mask = np.ones(nruns, dtype=bool)
            if dirty_fold:
                dirty_mask[demand_runs] = False
            dirty_runs = np.nonzero(dirty_mask)[0].astype(np.int32)
            parts_lines.append(run_lines[dirty_runs])
            parts_seq.append(dirty_runs * stride + degree + 1)
            parts_kinds.append(np.full(dirty_runs.size, _DIRTY, dtype=np.uint8))
            ev_lines = np.concatenate(parts_lines)
            ev_seq = np.concatenate(parts_seq)
            ev_kinds = np.concatenate(parts_kinds)
            n_ev = ev_lines.size
            # Sequence numbers are < nruns * stride, comfortably int32
            # (callers build them that way), and the 4-byte radix sort
            # is twice as fast as the 8-byte one.
            order = np.argsort(ev_seq, kind="stable")
            hit, victim_dirty = level.process(ev_lines[order], ev_kinds[order])
            # inverse permutation: where each part's events landed
            inv = np.empty(n_ev, dtype=np.int64)
            inv[order] = _iota(n_ev)
            d_pos = inv[:nd]
            pf_pos = inv[nd : nd + npf]
        d_hit = hit[d_pos]
        run_src[demand_runs[d_hit]] = hit_code
        missed_runs = demand_runs[~d_hit]
        pf_keep = ~hit[pf_pos]
        vd_total = int(victim_dirty.sum())
        vd_pf = int(victim_dirty[pf_pos].sum()) if npf else 0
        return missed_runs, pf_keep, vd_total, vd_pf

    def flush(self) -> None:
        """Invalidate caches and TLB (prefetch history is kept, like the
        precise hierarchy's flush)."""
        for lv in self.levels:
            lv.flush()
        if self.tlb is not None:
            self.tlb.flush()
