"""Data-TLB model.

A set-associative LRU translation cache over page numbers, built on the
generic :class:`repro.memsim.cache.Cache` with the page size as the
"line" size.  The simulated processor charges a fixed page-walk penalty
per miss; the evaluation workloads are streaming, so the DTLB mainly
matters for the random-access example workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memsim.cache import Cache, CacheConfig

__all__ = ["Tlb", "TlbConfig"]


@dataclass(frozen=True)
class TlbConfig:
    """DTLB geometry and page-walk cost."""

    entries: int = 64
    page_size: int = 4096
    associativity: int = 4
    walk_cycles: float = 30.0

    def __post_init__(self) -> None:
        if self.entries % self.associativity:
            raise ValueError("entries must be divisible by associativity")


class Tlb:
    """Set-associative LRU DTLB."""

    def __init__(self, config: TlbConfig) -> None:
        self.config = config
        self._cache = Cache(
            CacheConfig(
                "DTLB",
                size_bytes=config.entries * config.page_size,
                line_size=config.page_size,
                associativity=config.associativity,
            )
        )

    @property
    def stats(self):
        """Hit/miss counters (shared with the backing cache)."""
        return self._cache.stats

    def access(self, address: int) -> bool:
        """Translate one byte address; returns ``True`` on TLB hit."""
        page = self._cache.line_of(address)
        if self._cache.access(page):
            return True
        self._cache.fill(page)
        return False

    def access_bulk(self, addresses: np.ndarray) -> int:
        """Translate a batch of addresses; returns the number of misses.

        Consecutive accesses to the same page are collapsed first — the
        dominant case for the streaming patterns — so the per-page loop
        only runs on page transitions.
        """
        pages = (
            np.asarray(addresses, dtype=np.uint64)
            >> np.uint64(int(self.config.page_size).bit_length() - 1)
        ).astype(np.int64)
        if pages.size == 0:
            return 0
        # Keep first occurrence of each run of equal pages.
        keep = np.empty(pages.size, dtype=bool)
        keep[0] = True
        np.not_equal(pages[1:], pages[:-1], out=keep[1:])
        misses = 0
        run_pages = pages[keep]
        run_lengths = np.diff(np.append(np.nonzero(keep)[0], pages.size))
        for page, run in zip(run_pages, run_lengths):
            if not self._cache.access(int(page)):
                self._cache.fill(int(page))
                misses += 1
            # Remaining accesses of the run hit; account them in bulk.
            if run > 1:
                self._cache.stats.hits += int(run) - 1
        return misses

    def flush(self) -> None:
        self._cache.flush()
