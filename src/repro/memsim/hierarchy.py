"""Multi-level cache hierarchy: the *precise* memory engine.

Models an inclusive L1D/L2/L3 hierarchy with true LRU at every level,
optional next-line prefetching into L2 and a data TLB.  Every access is
classified into the :class:`~repro.memsim.datasource.DataSource` that
served it, which is exactly the information a PEBS load-latency record
carries on real hardware.

Both engines (this one and :class:`repro.memsim.analytic.AnalyticEngine`)
implement the same ``run_pattern`` interface and return
:class:`PatternResult`, so the simulated processor can switch fidelity
per run (see DESIGN.md, "Fidelity modes").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.memsim.cache import Cache, CacheConfig
from repro.memsim.datasource import DataSource, LatencyModel
from repro.memsim.patterns import AccessPattern, MemOp
from repro.memsim.prefetch import NextLinePrefetcher
from repro.memsim.tlb import Tlb, TlbConfig

__all__ = ["CacheHierarchy", "HierarchyConfig", "PatternResult", "PreciseEngine"]

#: Expansion block size used when materializing pattern addresses.
_BLOCK = 1 << 15


def haswell_levels() -> tuple[CacheConfig, ...]:
    """Per-core cache geometry approximating a Xeon E5-2680 v3 (Jureca).

    The shared 30 MB L3 is modeled as a 32 MB power-of-two-sets cache
    private to the simulated core; the evaluation's data structures are
    either far larger (matrix, 617 MB) or far smaller (vectors, ≈9 MB)
    than the L3, so the slight capacity difference does not change which
    regime each structure falls into.
    """
    return (
        CacheConfig("L1D", 32 * 1024, line_size=64, associativity=8),
        CacheConfig("L2", 256 * 1024, line_size=64, associativity=8),
        CacheConfig("L3", 32 * 1024 * 1024, line_size=64, associativity=16),
    )


@dataclass(frozen=True)
class HierarchyConfig:
    """Configuration of the precise hierarchy."""

    levels: tuple[CacheConfig, ...] = field(default_factory=haswell_levels)
    latency: LatencyModel = field(default_factory=LatencyModel)
    enable_prefetch: bool = True
    prefetch_degree: int = 2
    tlb: TlbConfig | None = field(default_factory=TlbConfig)

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("hierarchy needs at least one level")
        line = self.levels[0].line_size
        if any(lv.line_size != line for lv in self.levels):
            raise ValueError("all levels must share one line size")

    def legal_sources(self, *, remote: bool = False) -> frozenset[DataSource]:
        """Data sources any engine over this hierarchy may emit.

        Cache-level hits up to the configured depth, plus the line-fill
        buffer and DRAM.  With ``remote`` (the SPE backend's NUMA
        model) the remote-access codes are additionally legal; in the
        default single-socket PEBS model they are not — the trace
        validator treats samples outside this set as corruption.
        """
        hits = (DataSource.L1, DataSource.L2, DataSource.L3)[: len(self.levels)]
        legal = frozenset(hits) | {DataSource.LFB, DataSource.DRAM}
        if remote:
            legal |= {
                DataSource.REMOTE,
                DataSource.REMOTE_CACHE,
                DataSource.REMOTE_DRAM,
            }
        return legal


@dataclass
class PatternResult:
    """Outcome of running one access pattern through a memory engine.

    Attributes
    ----------
    count:
        Number of accesses executed.
    level_misses:
        ``{"L1D": n, "L2": n, "L3": n}`` — accesses that missed at each
        level (i.e. had to look past it).
    source_counts:
        How many accesses each :class:`DataSource` served.
    sample_sources:
        Data source for each requested sample offset (aligned with the
        ``sample_offsets`` argument of ``run_pattern``).
    sample_latencies:
        Access cost in cycles for each sample.
    tlb_misses:
        Data-TLB misses incurred (0 when no TLB is configured).
    dram_lines:
        Number of cache lines transferred from DRAM (traffic model).
    writeback_lines:
        Dirty lines written back to DRAM by last-level evictions.
    """

    count: int
    level_misses: dict[str, int]
    source_counts: dict[DataSource, int]
    sample_sources: np.ndarray
    sample_latencies: np.ndarray
    tlb_misses: int = 0
    dram_lines: int = 0
    writeback_lines: int = 0

    def mean_cost_cycles(self, latency: LatencyModel) -> float:
        """Average per-access cost implied by the source mix."""
        total = sum(self.source_counts.values())
        if not total:
            return 0.0
        return (
            sum(latency.latency(s) * n for s, n in self.source_counts.items()) / total
        )


class CacheHierarchy:
    """The stacked caches themselves, independent of pattern handling."""

    def __init__(self, config: HierarchyConfig) -> None:
        self.config = config
        self.levels = [Cache(c) for c in config.levels]
        self.line_size = config.levels[0].line_size
        self.tlb = Tlb(config.tlb) if config.tlb is not None else None
        self.prefetcher = (
            NextLinePrefetcher(degree=config.prefetch_degree)
            if config.enable_prefetch
            else None
        )
        # DataSource for a hit at level index i.
        self._hit_source = [DataSource.L1, DataSource.L2, DataSource.L3][
            : len(self.levels)
        ]
        n = len(self.levels)
        self._n_levels = n
        self._last_index = n - 1
        # _fill_orders[top] = level indices to fill after a hit below
        # `top` (top == n means a full miss), innermost level last.
        self._fill_orders = tuple(
            tuple(range(top - 1, -1, -1)) for top in range(n + 1)
        )
        self._has_l2 = n >= 2
        self._has_l3 = n >= 3
        self.dram_lines = 0
        #: dirty lines written back to memory on last-level eviction
        self.dram_writebacks = 0

    def _fill_last(self, line: int, *, from_prefetch: bool = False) -> None:
        """Fill into the last level, accounting dirty-victim writebacks."""
        last = self.levels[-1]
        last.fill(line, from_prefetch=from_prefetch)
        if last.last_victim_dirty:
            self.dram_writebacks += 1

    def access_line(self, line: int, op: MemOp) -> DataSource:
        """Run one line-granular access; returns its data source.

        Misses are filled inclusively into every level above the hit
        point.  Stores are write-allocate and mark the line dirty at
        the last level; evicting a dirty line from there writes it back
        to memory (counted in :attr:`dram_writebacks`).
        """
        levels = self.levels
        hit_level = -1
        for i, cache in enumerate(levels):
            if cache.access(line):
                hit_level = i
                break
        if hit_level != 0:
            # Fill the line into all levels above the hit point.
            top = hit_level if hit_level >= 0 else self._n_levels
            last_index = self._last_index
            for i in self._fill_orders[top]:
                if i == last_index:
                    self._fill_last(line)
                else:
                    levels[i].fill(line)
            if self.prefetcher is not None:
                pf_lines = self.prefetcher.on_miss(line)
                if self._has_l2:
                    l2 = levels[1]
                    for pf_line in pf_lines:
                        # Prefetches land in L2 (and L3 for inclusion).
                        if not l2.contains(pf_line):
                            l2.fill(pf_line, from_prefetch=True)
                            if self._has_l3 and not levels[2].contains(pf_line):
                                self._fill_last(pf_line, from_prefetch=True)
                                self.dram_lines += 1
        if op == MemOp.STORE:
            last = levels[-1]
            if not last.mark_dirty(line):
                # Inclusivity repair: the line aged out of the last
                # level while still living above it.
                self._fill_last(line)
                last.mark_dirty(line)
        if hit_level == 0:
            return DataSource.L1
        if hit_level >= 0:
            return self._hit_source[hit_level]
        self.dram_lines += 1
        return DataSource.DRAM

    def flush(self) -> None:
        for cache in self.levels:
            cache.flush()
        if self.tlb is not None:
            self.tlb.flush()

    def reset_stats(self) -> None:
        for cache in self.levels:
            cache.stats.reset()
        if self.tlb is not None:
            self.tlb.stats.reset()
        self.dram_lines = 0
        self.dram_writebacks = 0


class PreciseEngine:
    """Per-access memory engine over a :class:`CacheHierarchy`.

    Parameters
    ----------
    config:
        Hierarchy configuration.
    rng:
        Generator used only for latency jitter of sampled accesses.
    """

    name = "precise"

    def __init__(
        self,
        config: HierarchyConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config or HierarchyConfig()
        self.hierarchy = CacheHierarchy(self.config)
        self._rng = rng

    def run_pattern(
        self, pattern: AccessPattern, sample_offsets: np.ndarray | None = None
    ) -> PatternResult:
        """Execute every access of *pattern*; classify sampled offsets.

        ``sample_offsets`` must be sorted ascending access indices; the
        returned ``sample_sources``/``sample_latencies`` align with it.
        """
        hier = self.hierarchy
        line_shift = int(np.log2(hier.line_size))
        samples = (
            np.asarray(sample_offsets, dtype=np.int64)
            if sample_offsets is not None
            else np.empty(0, dtype=np.int64)
        )
        if samples.size and np.any(np.diff(samples) < 0):
            raise ValueError("sample_offsets must be sorted ascending")
        sample_src = np.zeros(samples.size, dtype=np.int64)

        n = pattern.count
        src_hist = np.zeros(max(int(s) for s in DataSource) + 1, dtype=np.int64)
        tlb_misses0 = hier.tlb.stats.misses if hier.tlb else 0
        dram0 = hier.dram_lines
        wb0 = hier.dram_writebacks
        miss0 = [c.stats.misses + c.stats.prefetch_fills for c in hier.levels]

        s_ptr = 0
        n_samples = samples.size
        samples_list = samples.tolist()
        l1_code = int(DataSource.L1)
        op = pattern.op
        is_store = op == MemOp.STORE
        access_line = hier.access_line
        l1_stats = hier.levels[0].stats
        mark_dirty_last = hier.levels[-1].mark_dirty
        hist = src_hist.tolist()  # plain-int counters inside the hot loop
        for lo in range(0, n, _BLOCK):
            hi = min(lo + _BLOCK, n)
            addrs = pattern.addresses_at(np.arange(lo, hi, dtype=np.int64))
            lines = (addrs >> np.uint64(line_shift)).astype(np.int64)
            if hier.tlb is not None:
                hier.tlb.access_bulk(addrs)
            # Collapse consecutive same-line accesses: after the first
            # access (which may miss and fill), the rest of the run hits
            # L1 by construction — fills are instantaneous.  This keeps
            # per-access semantics exact while cutting the Python loop
            # by the accesses-per-line factor on unit-stride sweeps.
            m = hi - lo
            keep = np.empty(m, dtype=bool)
            keep[0] = True
            np.not_equal(lines[1:], lines[:-1], out=keep[1:])
            run_starts = np.nonzero(keep)[0]
            run_lines = lines[run_starts].tolist()
            starts = run_starts.tolist()
            ends = starts[1:]
            ends.append(m)
            for start, end, line in zip(starts, ends, run_lines):
                src = access_line(line, op)
                hist[src] += 1
                run_len = end - start
                if run_len > 1:
                    # Account the collapsed repeat accesses.
                    hist[l1_code] += run_len - 1
                    l1_stats.hits += run_len - 1
                    if is_store:
                        mark_dirty_last(line)
                while s_ptr < n_samples and samples_list[s_ptr] < lo + end:
                    offset_in_block = samples_list[s_ptr] - lo
                    sample_src[s_ptr] = (
                        int(src) if offset_in_block == start else l1_code
                    )
                    s_ptr += 1
        src_hist[:] = hist

        source_counts = {
            DataSource(i): int(c) for i, c in enumerate(src_hist) if c and i
        }
        # "Misses" count line fetches into the level — demand misses plus
        # prefetch fills — i.e. lines transferred, matching the analytic
        # engine and the way PAPI-style miss counters are used in the
        # paper's per-instruction miss-rate curves.
        level_misses = {
            c.config.name: c.stats.misses + c.stats.prefetch_fills - m0
            for c, m0 in zip(hier.levels, miss0)
        }
        latencies = self.config.latency.sample(sample_src, self._rng)
        return PatternResult(
            count=n,
            level_misses=level_misses,
            source_counts=source_counts,
            sample_sources=sample_src,
            sample_latencies=latencies,
            tlb_misses=(hier.tlb.stats.misses - tlb_misses0) if hier.tlb else 0,
            dram_lines=hier.dram_lines - dram0,
            writeback_lines=hier.dram_writebacks - wb0,
        )

    def flush(self) -> None:
        self.hierarchy.flush()
