"""Access-pattern descriptors.

A workload describes its memory behaviour as a sequence of *patterns*:
compact, closed-form descriptions of an access stream (sequential sweep,
strided walk, gather through an index array, uniform random, or an
explicit address list).  Patterns serve three consumers:

* the **precise engine** expands them (fully or block-wise) into concrete
  addresses fed through the set-associative hierarchy;
* the **analytic engine** reads their :meth:`AccessPattern.locality`
  summary and costs them in closed form;
* the **PEBS sampler** asks for the concrete addresses of the specific
  access offsets that the sampling period selects
  (:meth:`AccessPattern.addresses_at`), so sampled addresses are exact
  even when the bulk of the stream is costed analytically.

All address arithmetic is in bytes on ``uint64``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro.util.bitops import ceil_div

__all__ = [
    "AccessPattern",
    "ExplicitPattern",
    "GatherPattern",
    "Locality",
    "MemOp",
    "RandomPattern",
    "SequentialPattern",
    "StridedPattern",
]


class MemOp(IntEnum):
    """Memory operation kind; values are stable in serialized traces."""

    LOAD = 0
    STORE = 1


@dataclass(frozen=True)
class Locality:
    """Closed-form locality summary consumed by the analytic engine.

    Attributes
    ----------
    lo, hi:
        Bounding byte range ``[lo, hi)`` of the pattern.
    unique_bytes:
        Number of distinct bytes touched (≤ ``hi - lo``).
    count:
        Total number of accesses.
    working_set_bytes:
        Size of the short-term reuse window: repeat touches of a line
        hit at the lowest cache level whose capacity covers this.
    kind:
        ``"seq"``, ``"strided"``, ``"gather"`` or ``"random"``.
    direction:
        +1 for ascending sweeps, -1 for descending, 0 for no direction.
        Determines which end of a larger-than-cache footprint remains
        resident after the pattern completes.
    """

    lo: int
    hi: int
    unique_bytes: int
    count: int
    working_set_bytes: int
    kind: str
    direction: int = 0


class AccessPattern(ABC):
    """Base class for access-stream descriptors."""

    #: operation performed by every access of the pattern
    op: MemOp
    #: element size in bytes of one access
    elem_size: int

    @property
    @abstractmethod
    def count(self) -> int:
        """Total number of accesses in the pattern."""

    @abstractmethod
    def addresses_at(self, offsets: np.ndarray) -> np.ndarray:
        """Concrete byte addresses of accesses number *offsets* (0-based)."""

    @abstractmethod
    def locality(self) -> Locality:
        """Closed-form locality summary for analytic costing."""

    def expand(self) -> np.ndarray:
        """All addresses of the pattern, in access order."""
        return self.addresses_at(np.arange(self.count, dtype=np.int64))

    def _check_offsets(self, offsets: np.ndarray) -> np.ndarray:
        off = np.asarray(offsets, dtype=np.int64)
        if off.size and (off.min() < 0 or off.max() >= self.count):
            raise IndexError(
                f"offsets out of range [0, {self.count}) for {type(self).__name__}"
            )
        return off


@dataclass(frozen=True)
class SequentialPattern(AccessPattern):
    """A unit-stride sweep over ``count * elem_size`` contiguous bytes.

    ``direction=+1`` starts at *start* and ascends; ``direction=-1``
    starts at the top of the range and descends (the Gauss–Seidel
    backward sweep).  *start* is always the **low** end of the range.
    """

    start: int
    count_: int
    elem_size: int = 8
    direction: int = 1
    op: MemOp = MemOp.LOAD

    def __post_init__(self) -> None:
        if self.direction not in (1, -1):
            raise ValueError(f"direction must be ±1, got {self.direction}")
        if self.count_ < 0 or self.elem_size <= 0:
            raise ValueError("count must be >= 0 and elem_size positive")

    @property
    def count(self) -> int:
        return self.count_

    def addresses_at(self, offsets: np.ndarray) -> np.ndarray:
        off = self._check_offsets(offsets)
        if self.direction == 1:
            idx = off
        else:
            idx = (self.count_ - 1) - off
        return (np.uint64(self.start) + idx.astype(np.uint64) * np.uint64(self.elem_size))

    def locality(self) -> Locality:
        nbytes = self.count_ * self.elem_size
        # Short-term reuse of a unit-stride sweep is confined to the
        # current cache line: repeats always hit L1 (or the LFB).
        return Locality(
            lo=self.start,
            hi=self.start + nbytes,
            unique_bytes=nbytes,
            count=self.count_,
            working_set_bytes=min(nbytes, 128),
            kind="seq",
            direction=self.direction,
        )


@dataclass(frozen=True)
class StridedPattern(AccessPattern):
    """*count* accesses of *elem_size* bytes, *stride* bytes apart."""

    start: int
    count_: int
    stride: int
    elem_size: int = 8
    op: MemOp = MemOp.LOAD

    def __post_init__(self) -> None:
        if self.stride <= 0:
            raise ValueError(f"stride must be positive, got {self.stride}")
        if self.count_ < 0 or self.elem_size <= 0:
            raise ValueError("count must be >= 0 and elem_size positive")

    @property
    def count(self) -> int:
        return self.count_

    def addresses_at(self, offsets: np.ndarray) -> np.ndarray:
        off = self._check_offsets(offsets)
        return np.uint64(self.start) + off.astype(np.uint64) * np.uint64(self.stride)

    def locality(self) -> Locality:
        span = (self.count_ - 1) * self.stride + self.elem_size if self.count_ else 0
        return Locality(
            lo=self.start,
            hi=self.start + span,
            unique_bytes=self.count_ * self.elem_size,
            count=self.count_,
            working_set_bytes=min(span, 128),
            kind="strided",
            direction=1,
        )


@dataclass(frozen=True)
class GatherPattern(AccessPattern):
    """Indexed accesses ``base + indices[i] * elem_size``.

    Used for the HPCG ``x[col]`` gathers.  *working_set_bytes* tells the
    analytic engine how large the short-term reuse window is (for a
    27-point stencil traversed row-major it is roughly three grid planes
    of the gathered vector); by default it is the full index span, i.e.
    no short-term reuse is assumed beyond the first touch.
    """

    base: int
    indices: np.ndarray
    elem_size: int = 8
    op: MemOp = MemOp.LOAD
    working_set_hint: int | None = None
    direction_hint: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "indices", np.ascontiguousarray(self.indices, dtype=np.int64)
        )
        if self.indices.ndim != 1:
            raise ValueError("indices must be 1-D")
        if self.indices.size and self.indices.min() < 0:
            raise ValueError("indices must be non-negative")

    @property
    def count(self) -> int:
        return int(self.indices.size)

    def addresses_at(self, offsets: np.ndarray) -> np.ndarray:
        off = self._check_offsets(offsets)
        return (
            np.uint64(self.base)
            + self.indices[off].astype(np.uint64) * np.uint64(self.elem_size)
        )

    def locality(self) -> Locality:
        if self.indices.size == 0:
            return Locality(self.base, self.base + 1, 0, 0, 0, "gather", 0)
        lo_i = int(self.indices.min())
        hi_i = int(self.indices.max()) + 1
        unique = int(np.unique(self.indices).size) * self.elem_size
        span = (hi_i - lo_i) * self.elem_size
        ws = self.working_set_hint if self.working_set_hint is not None else span
        return Locality(
            lo=self.base + lo_i * self.elem_size,
            hi=self.base + hi_i * self.elem_size,
            unique_bytes=unique,
            count=self.count,
            working_set_bytes=ws,
            kind="gather",
            direction=self.direction_hint,
        )


@dataclass(frozen=True)
class RandomPattern(AccessPattern):
    """*count* uniform random accesses within ``[start, start + nbytes)``.

    Addresses are generated deterministically from *seed* so the precise
    engine and the PEBS sampler see the same stream.
    """

    start: int
    nbytes: int
    count_: int
    elem_size: int = 8
    op: MemOp = MemOp.LOAD
    seed: int = 0

    def __post_init__(self) -> None:
        if self.nbytes < self.elem_size:
            raise ValueError("range must hold at least one element")

    @property
    def count(self) -> int:
        return self.count_

    def _elements(self, offsets: np.ndarray) -> np.ndarray:
        # Counter-based generation: the element index depends only on
        # the access offset (splitmix64-style hash), so addresses_at is
        # consistent across calls and offers O(1) random access.
        n_elems = self.nbytes // self.elem_size
        x = offsets.astype(np.uint64) + np.uint64(self.seed * 0x9E3779B97F4A7C15 % 2**64)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x = x ^ (x >> np.uint64(31))
        return x % np.uint64(n_elems)

    def addresses_at(self, offsets: np.ndarray) -> np.ndarray:
        off = self._check_offsets(offsets)
        return (
            np.uint64(self.start) + self._elements(off) * np.uint64(self.elem_size)
        )

    def locality(self) -> Locality:
        n_elems = self.nbytes // self.elem_size
        # Expected distinct elements among `count` uniform draws.
        if n_elems > 0 and self.count_ > 0:
            frac = 1.0 - np.exp(-self.count_ / n_elems)
            unique = int(round(n_elems * frac)) * self.elem_size
            unique = max(self.elem_size, min(unique, self.nbytes))
        else:
            unique = 0
        return Locality(
            lo=self.start,
            hi=self.start + self.nbytes,
            unique_bytes=unique,
            count=self.count_,
            working_set_bytes=self.nbytes,
            kind="random",
            direction=0,
        )


@dataclass(frozen=True)
class ExplicitPattern(AccessPattern):
    """A concrete, pre-materialized address list."""

    addresses: np.ndarray
    elem_size: int = 8
    op: MemOp = MemOp.LOAD

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "addresses", np.ascontiguousarray(self.addresses, dtype=np.uint64)
        )
        if self.addresses.ndim != 1:
            raise ValueError("addresses must be 1-D")

    @property
    def count(self) -> int:
        return int(self.addresses.size)

    def addresses_at(self, offsets: np.ndarray) -> np.ndarray:
        off = self._check_offsets(offsets)
        return self.addresses[off]

    def expand(self) -> np.ndarray:
        return self.addresses

    def locality(self) -> Locality:
        if self.addresses.size == 0:
            return Locality(0, 1, 0, 0, 0, "gather", 0)
        lo = int(self.addresses.min())
        hi = int(self.addresses.max()) + self.elem_size
        # Count unique lines at 64 B granularity; exact uniqueness at
        # byte granularity is not needed by the analytic model.
        unique = int(np.unique(self.addresses >> np.uint64(6)).size) * 64
        unique = min(unique, hi - lo)
        direction = 0
        if self.addresses.size >= 2:
            d = np.diff(self.addresses.astype(np.int64))
            if (d >= 0).all():
                direction = 1
            elif (d <= 0).all():
                direction = -1
        return Locality(
            lo=lo,
            hi=hi,
            unique_bytes=max(unique, self.elem_size),
            count=self.count,
            working_set_bytes=hi - lo,
            kind="gather",
            direction=direction,
        )


def pattern_lines(pattern: AccessPattern, line_size: int = 64) -> int:
    """Approximate distinct cache lines touched by *pattern*."""
    loc = pattern.locality()
    return ceil_div(max(loc.unique_bytes, 1), line_size) if loc.count else 0
