"""Single-level set-associative cache with true LRU replacement.

The precise engine stacks several of these into a hierarchy
(:mod:`repro.memsim.hierarchy`).  Each set is an ``OrderedDict`` whose
insertion order *is* the recency order (first item = LRU victim), so
every operation is a couple of C-speed dict operations — the property
that makes per-access simulation of small-to-medium workloads
tractable in pure Python.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.util.bitops import ilog2, is_pow2

__all__ = ["Cache", "CacheConfig", "CacheStats"]

# per-line flag indices in the set dictionaries
_PF = 0
_DIRTY = 1


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Parameters
    ----------
    name:
        Level name used in reports (``"L1D"``, ``"L2"``, ...).
    size_bytes:
        Total capacity; must be ``line_size * associativity * n_sets``
        with power-of-two sets.
    line_size:
        Cache-line size in bytes (power of two).
    associativity:
        Ways per set.
    """

    name: str
    size_bytes: int
    line_size: int = 64
    associativity: int = 8

    def __post_init__(self) -> None:
        if not is_pow2(self.line_size):
            raise ValueError(f"line_size must be a power of two, got {self.line_size}")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.size_bytes % (self.line_size * self.associativity):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} is not divisible by "
                f"line_size*associativity"
            )
        n_sets = self.size_bytes // (self.line_size * self.associativity)
        if not is_pow2(n_sets):
            raise ValueError(f"{self.name}: number of sets ({n_sets}) must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_size * self.associativity)


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    prefetch_fills: int = 0
    prefetch_hits: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = 0
        self.prefetch_fills = self.prefetch_hits = 0


class Cache:
    """One set-associative LRU cache level.

    The cache stores *line numbers* (address >> log2(line_size)); tag =
    line number (full-tag store, no aliasing).  ``lookup`` probes without
    filling; ``fill`` inserts a line, returning the victim if any.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self._set_shift = ilog2(config.line_size)
        self._set_mask = config.n_sets - 1
        self._assoc = config.associativity
        # line -> [prefetched, dirty]; dict order = recency (first=LRU)
        self._sets: list[OrderedDict[int, list]] = [
            OrderedDict() for _ in range(config.n_sets)
        ]
        #: whether the victim of the most recent :meth:`fill` was dirty
        self.last_victim_dirty = False

    # -- geometry -----------------------------------------------------
    def line_of(self, address: int) -> int:
        """Line number containing byte *address*."""
        return int(address) >> self._set_shift

    def set_of_line(self, line: int) -> int:
        return int(line) & self._set_mask

    # -- operations ---------------------------------------------------
    def access(self, line: int, *, count_stats: bool = True) -> bool:
        """Probe *line*; on hit refresh LRU age and return ``True``.

        Does **not** fill on miss — the hierarchy decides fill order.
        """
        d = self._sets[line & self._set_mask]
        flags = d.get(line)
        if flags is not None:
            d.move_to_end(line)
            if count_stats:
                self.stats.hits += 1
                if flags[_PF]:
                    self.stats.prefetch_hits += 1
                    flags[_PF] = False
            return True
        if count_stats:
            self.stats.misses += 1
        return False

    def fill(self, line: int, *, from_prefetch: bool = False) -> int | None:
        """Insert *line*, evicting the LRU way if the set is full.

        Returns the evicted line number, or ``None``; whether that
        victim was dirty is left in :attr:`last_victim_dirty`.  Filling
        a line already present just refreshes its age.
        """
        d = self._sets[line & self._set_mask]
        self.last_victim_dirty = False
        if line in d:
            d.move_to_end(line)
            return None
        victim = None
        if len(d) >= self._assoc:
            victim, victim_flags = d.popitem(last=False)
            self.last_victim_dirty = bool(victim_flags[_DIRTY])
            self.stats.evictions += 1
        d[line] = [from_prefetch, False]
        if from_prefetch:
            self.stats.prefetch_fills += 1
        return victim

    def mark_dirty(self, line: int) -> bool:
        """Mark a resident line dirty (a store hit); returns whether
        the line was present.  Does not touch the LRU order."""
        d = self._sets[line & self._set_mask]
        flags = d.get(line)
        if flags is not None:
            flags[_DIRTY] = True
            return True
        return False

    def invalidate(self, line: int) -> bool:
        """Drop *line* if present; return whether it was present."""
        d = self._sets[line & self._set_mask]
        return d.pop(line, None) is not None

    def contains(self, line: int) -> bool:
        """Probe without touching LRU state or statistics."""
        return line in self._sets[line & self._set_mask]

    def resident_lines(self):
        """All currently resident line numbers (unordered)."""
        out = [line for d in self._sets for line in d]
        return np.asarray(out, dtype=np.uint64)

    def dirty_lines(self) -> int:
        """Number of currently dirty resident lines."""
        return sum(flags[_DIRTY] for d in self._sets for flags in d.values())

    def flush(self) -> None:
        """Invalidate the whole cache (statistics are preserved)."""
        for d in self._sets:
            d.clear()
        self.last_victim_dirty = False
