"""Memory-hierarchy data sources and their access-cost model.

PEBS load-latency records carry a *data source* field (which structure
served the load) and the *access cost* in core cycles.  The simulator
reproduces both: the hierarchy engines classify each access into a
:class:`DataSource` and the :class:`LatencyModel` turns sources into
cycle costs, with optional jitter so latency histograms are not
degenerate spikes.

The default latencies approximate a Haswell-EP core (the Jureca nodes
used in the paper are dual Xeon E5-2680 v3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

__all__ = ["DataSource", "LatencyModel"]


class DataSource(IntEnum):
    """Which part of the memory hierarchy served an access.

    The integer values are stable and appear in serialized traces; do
    not renumber.
    """

    L1 = 1
    #: Line-fill buffer: the line was already in flight (a prior miss to
    #: the same line had not completed).  PEBS reports these separately.
    LFB = 2
    L2 = 3
    L3 = 4
    DRAM = 5
    #: Data served from a remote socket's cache or memory, without
    #: distinguishing which.  Unused by the single-socket model but
    #: kept for trace-format completeness (legacy PEBS encoding).
    REMOTE = 6
    #: Served by the remote socket's last-level cache.  ARM SPE packet
    #: data sources distinguish remote cache from remote memory; the
    #: SPE backend's NUMA model emits these two codes.
    REMOTE_CACHE = 7
    #: Served by the remote socket's memory.
    REMOTE_DRAM = 8

    @property
    def pretty(self) -> str:
        return {
            DataSource.L1: "L1D",
            DataSource.LFB: "LFB",
            DataSource.L2: "L2",
            DataSource.L3: "L3",
            DataSource.DRAM: "DRAM",
            DataSource.REMOTE: "remote",
            DataSource.REMOTE_CACHE: "remote-cache",
            DataSource.REMOTE_DRAM: "remote-DRAM",
        }[self]

    @property
    def is_remote(self) -> bool:
        """Whether the access crossed the socket interconnect."""
        return self in (
            DataSource.REMOTE,
            DataSource.REMOTE_CACHE,
            DataSource.REMOTE_DRAM,
        )


@dataclass(frozen=True)
class LatencyModel:
    """Cycle cost of an access by data source.

    Parameters
    ----------
    cycles:
        Mean access cost per source.
    jitter:
        Relative standard deviation of the (truncated normal) cost
        noise; 0 disables jitter.
    """

    cycles: dict[DataSource, float] = field(
        default_factory=lambda: {
            DataSource.L1: 4.0,
            DataSource.LFB: 9.0,
            DataSource.L2: 12.0,
            DataSource.L3: 38.0,
            DataSource.DRAM: 210.0,
            DataSource.REMOTE: 310.0,
            DataSource.REMOTE_CACHE: 95.0,
            DataSource.REMOTE_DRAM: 315.0,
        }
    )
    jitter: float = 0.10

    def latency(self, source: DataSource) -> float:
        """Mean cost in cycles for *source*."""
        return self.cycles[source]

    def sample(
        self, sources: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Per-access cost in cycles for an array of source codes.

        Parameters
        ----------
        sources:
            Integer array of :class:`DataSource` values.
        rng:
            If given, apply multiplicative truncated-normal jitter.
        """
        src = np.asarray(sources, dtype=np.int64)
        table = np.zeros(max(int(s) for s in DataSource) + 1, dtype=np.float64)
        for s, c in self.cycles.items():
            table[int(s)] = c
        lat = table[src]
        if rng is not None and self.jitter > 0:
            noise = rng.normal(1.0, self.jitter, size=lat.shape)
            # Truncate so costs never drop below half the mean: hardware
            # latencies have a hard floor (pipeline depth).
            lat = lat * np.clip(noise, 0.5, 2.0)
        return lat
