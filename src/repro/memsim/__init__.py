"""Memory-hierarchy simulation substrate.

The paper's measurement chain obtains, for every PEBS sample, the level
of the memory hierarchy that served the data and the access cost in
cycles.  This package provides that information from simulation, at two
fidelity levels:

* :mod:`repro.memsim.cache` / :mod:`repro.memsim.hierarchy` — a precise
  set-associative, LRU, inclusive multi-level cache simulator that
  processes every address (used by tests and small workloads);
* :mod:`repro.memsim.vectorized` — the same hierarchy replayed over
  whole NumPy address blocks; bit-identical results to the precise
  engine at an order of magnitude higher throughput;
* :mod:`repro.memsim.analytic` — a closed-form engine for pattern
  batches in the streaming regime (structure footprint ≫ last-level
  cache), used to run the paper's full 104³ HPCG problem.

Engines are built by name ("precise", "vectorized", "analytic") through
:func:`repro.memsim.engines.make_engine`.

Access streams are described by :mod:`repro.memsim.patterns`; the
hierarchy levels and their access costs by
:mod:`repro.memsim.datasource`.
"""

from repro.memsim.analytic import AnalyticEngine
from repro.memsim.cache import Cache, CacheConfig, CacheStats
from repro.memsim.datasource import DataSource, LatencyModel
from repro.memsim.engines import ENGINE_NAMES, make_engine
from repro.memsim.hierarchy import CacheHierarchy, HierarchyConfig, PreciseEngine
from repro.memsim.patterns import (
    AccessPattern,
    ExplicitPattern,
    GatherPattern,
    MemOp,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
)
from repro.memsim.prefetch import NextLinePrefetcher
from repro.memsim.tlb import Tlb, TlbConfig
from repro.memsim.vectorized import VectorizedEngine

__all__ = [
    "AccessPattern",
    "AnalyticEngine",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "CacheStats",
    "DataSource",
    "ENGINE_NAMES",
    "ExplicitPattern",
    "GatherPattern",
    "HierarchyConfig",
    "LatencyModel",
    "MemOp",
    "NextLinePrefetcher",
    "PreciseEngine",
    "RandomPattern",
    "SequentialPattern",
    "StridedPattern",
    "Tlb",
    "TlbConfig",
    "VectorizedEngine",
    "make_engine",
]
