"""Stream-detecting next-line hardware prefetcher model.

Approximates the L2 streamer of Intel cores: when misses form an
ascending (or descending) line stream, the prefetcher requests the next
*degree* lines in stream direction.  Prefetched lines are installed into
L2 by the hierarchy and counted separately, so benchmark reports can
show how much of the streaming traffic the prefetcher hides.
"""

from __future__ import annotations

from collections import deque

__all__ = ["NextLinePrefetcher"]


class NextLinePrefetcher:
    """Detects miss streams and emits prefetch candidates.

    Parameters
    ----------
    degree:
        How many lines ahead to prefetch once a stream is confirmed.
    history:
        How many recent miss lines to remember for stream detection.
    """

    def __init__(self, degree: int = 2, history: int = 16) -> None:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = degree
        self._recent: deque[int] = deque(maxlen=history)
        self.issued = 0

    def on_miss(self, line: int) -> list[int]:
        """Notify a demand miss at *line*; return lines to prefetch."""
        out: list[int] = []
        if line - 1 in self._recent:
            out = [line + d for d in range(1, self.degree + 1)]
        elif line + 1 in self._recent:
            out = [line - d for d in range(1, self.degree + 1) if line - d >= 0]
        self._recent.append(line)
        self.issued += len(out)
        return out

    def reset(self) -> None:
        self._recent.clear()
        self.issued = 0
