"""Closed-form memory engine for the streaming regime.

Running the paper's full problem (104³ local HPCG, ≈ 617 MB of matrix
arrays per rank, tens of millions of accesses per iteration) through the
per-access simulator is infeasible in pure Python.  In the regime the
evaluation actually probes — structures either far larger or far smaller
than the last-level cache, traversed by sweeps — cache behaviour has a
simple closed form, which this engine implements:

* Accesses are split into **first touches** (one per distinct cache
  line) and **repeat touches** (spatial/temporal reuse within the
  pattern).  Repeat touches hit at the lowest level whose capacity
  covers the pattern's short-term working set.
* First touches hit at a level iff the line is still **resident** there
  from earlier patterns.  Residency is tracked per level with a
  *segment LRU*: an LRU list of disjoint ``[lo, hi)`` byte ranges (with
  a coverage density for diffuse/random fills) totalling at most the
  level's capacity.  A sweep larger than the cache leaves only its
  **tail** resident — in the sweep's direction — which is what produces
  the paper's observation that performance briefly rises at phase
  transitions (the next phase begins in the still-cached tail of the
  previous one).

Sampled accesses get exact addresses from the pattern; their data source
is resolved deterministically for unit-stride sweeps (line-boundary
crossings are first touches) and probabilistically otherwise.

Cross-checked against the precise engine in
``benchmarks/test_ablation_engine.py`` and ``tests/memsim``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memsim.datasource import DataSource, LatencyModel
from repro.memsim.hierarchy import HierarchyConfig, PatternResult
from repro.memsim.patterns import AccessPattern, Locality, MemOp
from repro.util.bitops import ceil_div

__all__ = ["AnalyticEngine", "SegmentLru"]


@dataclass
class _Segment:
    """One resident byte range with a coverage density in (0, 1].

    ``direction`` records the sweep order it was streamed in: within a
    streamed segment the earliest-touched bytes (the start, in sweep
    direction) are the least recently used and get trimmed first.
    """

    lo: int
    hi: int
    density: float
    stamp: int
    direction: int = 1
    dirty: bool = False

    @property
    def resident_bytes(self) -> float:
        return (self.hi - self.lo) * self.density


class SegmentLru:
    """LRU list of disjoint resident ranges, capped at *capacity* bytes.

    Models which parts of the address space a cache level still holds,
    at object/segment granularity rather than line granularity.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._segments: list[_Segment] = []  # kept disjoint, unordered
        self._clock = 0
        #: dirty bytes removed by LRU eviction since the last
        #: :meth:`take_evicted_dirty_bytes` call
        self._evicted_dirty_bytes = 0.0

    def resident_bytes(self) -> float:
        return sum(s.resident_bytes for s in self._segments)

    def residency(self, lo: int, hi: int) -> float:
        """Fraction of ``[lo, hi)`` currently resident (density-weighted)."""
        if hi <= lo:
            return 0.0
        covered = 0.0
        for s in self._segments:
            o_lo, o_hi = max(lo, s.lo), min(hi, s.hi)
            if o_hi > o_lo:
                covered += (o_hi - o_lo) * s.density
        return min(1.0, covered / (hi - lo))

    def usable_residency(self, lo: int, hi: int, direction: int) -> float:
        """Resident fraction of ``[lo, hi)`` a *sweep* can actually use.

        A sweep evicts as it fetches: resident data the sweep only
        reaches after streaming ``d`` new bytes survives only if
        ``d < capacity`` (LRU pushes it out otherwise), and at most the
        first ``capacity - d`` bytes of it are still there.  This is
        why a same-direction re-sweep of a structure much larger than
        the cache gets *no* reuse, while a direction *reversal* (the
        Gauss–Seidel backward sweep) starts exactly in the surviving
        tail — the paper's phase-transition effect.

        ``direction=0`` (no sweep order) falls back to plain residency.
        """
        if hi <= lo:
            return 0.0
        if direction == 0:
            return self.residency(lo, hi)
        usable = 0.0
        for s in self._segments:
            o_lo, o_hi = max(lo, s.lo), min(hi, s.hi)
            if o_hi <= o_lo:
                continue
            dist = (o_lo - lo) if direction > 0 else (hi - o_hi)
            survive_budget = max(0.0, self.capacity - dist)
            usable += min((o_hi - o_lo) * s.density, survive_budget)
        return min(1.0, usable / (hi - lo))

    def _carve(self, lo: int, hi: int) -> None:
        """Remove ``[lo, hi)`` from all existing segments (split/trim)."""
        out: list[_Segment] = []
        for s in self._segments:
            if s.hi <= lo or s.lo >= hi:
                out.append(s)
                continue
            if s.lo < lo:
                out.append(
                    _Segment(s.lo, lo, s.density, s.stamp, s.direction, s.dirty)
                )
            if s.hi > hi:
                out.append(
                    _Segment(hi, s.hi, s.density, s.stamp, s.direction, s.dirty)
                )
        self._segments = out

    def insert(
        self,
        lo: int,
        hi: int,
        direction: int = 1,
        density: float = 1.0,
        dirty: bool = False,
    ) -> None:
        """Record that ``[lo, hi)`` was just streamed through this level.

        If the range exceeds the capacity, only the trailing ``capacity``
        bytes (in sweep *direction*) are kept resident; the evicted part
        of a *dirty* over-capacity insert is written back immediately.
        Older segments are evicted LRU-whole until the budget fits, with
        evicted dirty bytes accumulated for the writeback counter.
        """
        if hi <= lo or density <= 0:
            return
        self._clock += 1
        span = hi - lo
        eff_density = min(1.0, density)
        # Keep only the tail that can possibly fit.
        max_span = max(1, int(self.capacity / eff_density))
        if span > max_span:
            if dirty:
                self._evicted_dirty_bytes += (span - max_span) * eff_density
            if direction >= 0:
                lo = hi - max_span
            else:
                hi = lo + max_span
        self._carve(lo, hi)
        self._segments.append(
            _Segment(lo, hi, eff_density, self._clock, direction, dirty)
        )
        # Evict from the least-recently-inserted segments until within
        # capacity; the last victim is *trimmed*, not dropped whole, so
        # a small fill only nibbles at a big segment's LRU end instead
        # of invalidating it (LRU is line-granular on real hardware).
        self._segments.sort(key=lambda s: s.stamp)
        total = self.resident_bytes()
        i = 0
        while total > self.capacity and i < len(self._segments):
            victim = self._segments[i]
            overage = total - self.capacity
            if victim.resident_bytes <= overage + 1e-9:
                self._segments.pop(i)
                total -= victim.resident_bytes
                if victim.dirty:
                    self._evicted_dirty_bytes += victim.resident_bytes
            else:
                trim = int(overage / victim.density) + 1
                if victim.dirty:
                    self._evicted_dirty_bytes += min(
                        trim, victim.hi - victim.lo
                    ) * victim.density
                if victim.direction >= 0:
                    victim.lo = min(victim.lo + trim, victim.hi)
                else:
                    victim.hi = max(victim.hi - trim, victim.lo)
                if victim.hi <= victim.lo:
                    self._segments.pop(i)
                total = self.resident_bytes()

    def take_evicted_dirty_bytes(self) -> float:
        """Dirty bytes evicted since the last call (and reset)."""
        out = self._evicted_dirty_bytes
        self._evicted_dirty_bytes = 0.0
        return out

    def flush(self) -> None:
        self._segments.clear()
        self._evicted_dirty_bytes = 0.0


class AnalyticEngine:
    """Closed-form counterpart of :class:`~repro.memsim.hierarchy.PreciseEngine`.

    Parameters
    ----------
    config:
        The same hierarchy configuration the precise engine takes; only
        capacities, line size and the latency model are used.
    rng:
        Source of randomness for probabilistic sample classification and
        latency jitter.
    lfb_fraction:
        Fraction of the line-local repeat hits that PEBS would attribute
        to the line-fill buffer when the first touch itself missed to
        DRAM (adjacent loads issued before the fill returns).
    """

    name = "analytic"

    def __init__(
        self,
        config: HierarchyConfig | None = None,
        rng: np.random.Generator | None = None,
        lfb_fraction: float = 0.15,
        prefetch_coverage: float = 0.95,
    ) -> None:
        self.config = config or HierarchyConfig()
        self.latency: LatencyModel = self.config.latency
        self.line_size = self.config.levels[0].line_size
        self._rng = rng or np.random.default_rng(0)
        if not 0.0 <= lfb_fraction < 1.0:
            raise ValueError(f"lfb_fraction must be in [0, 1), got {lfb_fraction}")
        self.lfb_fraction = lfb_fraction
        if not 0.0 <= prefetch_coverage <= 1.0:
            raise ValueError(
                f"prefetch_coverage must be in [0, 1], got {prefetch_coverage}"
            )
        #: share of streaming first-touch DRAM misses whose *demand*
        #: access is converted to an L2 hit because the streamer ran
        #: ahead; the line fetch itself still counts as an L2/L3 miss
        #: (line transfer) and as DRAM traffic.
        self.prefetch_coverage = (
            prefetch_coverage if self.config.enable_prefetch else 0.0
        )
        self._capacities = [lv.size_bytes for lv in self.config.levels]
        self._names = [lv.name for lv in self.config.levels]
        self._residency = [SegmentLru(c) for c in self._capacities]

    # ------------------------------------------------------------------
    def _repeat_hit_level(self, working_set: int) -> int:
        """Index of the lowest level whose capacity covers *working_set*.

        Returns ``len(levels)`` when nothing does (repeats go to DRAM).
        """
        for i, cap in enumerate(self._capacities):
            if working_set <= cap:
                return i
        return len(self._capacities)

    def _first_touch_probs(self, loc: Locality) -> np.ndarray:
        """``P(first touch served at level i)`` plus DRAM as last entry."""
        r = [
            lru.usable_residency(loc.lo, loc.hi, loc.direction)
            for lru in self._residency
        ]
        # Enforce inclusive nesting r1 <= r2 <= r3.
        for i in range(1, len(r)):
            r[i] = max(r[i], r[i - 1])
        probs = np.empty(len(r) + 1, dtype=np.float64)
        prev = 0.0
        for i, ri in enumerate(r):
            probs[i] = max(0.0, ri - prev)
            prev = max(prev, ri)
        probs[-1] = max(0.0, 1.0 - prev)
        total = probs.sum()
        return probs / total if total > 0 else probs

    def run_pattern(
        self, pattern: AccessPattern, sample_offsets: np.ndarray | None = None
    ) -> PatternResult:
        """Cost *pattern* in closed form; classify sampled offsets."""
        loc = pattern.locality()
        count = loc.count
        samples = (
            np.asarray(sample_offsets, dtype=np.int64)
            if sample_offsets is not None
            else np.empty(0, dtype=np.int64)
        )
        if count == 0:
            return PatternResult(
                count=0,
                level_misses={n: 0 for n in self._names},
                source_counts={},
                sample_sources=np.zeros(samples.size, dtype=np.int64),
                sample_latencies=np.zeros(samples.size, dtype=np.float64),
            )

        unique_lines = ceil_div(max(loc.unique_bytes, 1), self.line_size)
        first_touch = min(count, unique_lines)
        repeat = count - first_touch
        ft_probs = self._first_touch_probs(loc)  # len(levels)+1
        rep_level = self._repeat_hit_level(loc.working_set_bytes)

        n_levels = len(self._capacities)
        ft_counts = ft_probs * first_touch  # float counts per level + DRAM
        # Repeat accesses all hit at rep_level (or DRAM if beyond).
        rep_counts = np.zeros(n_levels + 1, dtype=np.float64)
        rep_counts[min(rep_level, n_levels)] = repeat

        # Per-level miss counters (line fetches past level i) and DRAM
        # traffic are fixed by the residency model *before* prefetch
        # adjustment: the streamer changes who waits, not what moves.
        level_misses: dict[str, int] = {}
        for i, name in enumerate(self._names):
            ft_miss = float(ft_counts[i + 1 :].sum())
            rep_miss = float(rep_counts[i + 1 :].sum())
            level_misses[name] = int(round(ft_miss + rep_miss))
        dram_lines = int(round(ft_counts[-1] + rep_counts[-1]))

        streaming_dram = loc.kind in ("seq", "strided") and ft_probs[-1] > 0.5

        # Streamer coverage: demand accesses to prefetched lines observe
        # an L2 hit even though the line came from DRAM.
        if loc.kind in ("seq", "strided") and self.prefetch_coverage > 0:
            hidden = ft_counts[-1] * self.prefetch_coverage
            ft_counts[-1] -= hidden
            ft_counts[min(1, n_levels - 1)] += hidden

        # LFB attribution: applies to line-local repeats of unit-stride
        # sweeps whose first touches mostly miss to DRAM.
        lfb = 0.0
        if streaming_dram and rep_level == 0 and repeat > 0:
            lfb = repeat * self.lfb_fraction
            rep_counts[0] -= lfb

        source_counts: dict[DataSource, int] = {}
        level_sources = [DataSource.L1, DataSource.L2, DataSource.L3][:n_levels]
        for i, src in enumerate(level_sources):
            c = int(round(ft_counts[i] + rep_counts[i]))
            if c:
                source_counts[src] = c
        dram_count = int(round(ft_counts[-1] + rep_counts[-1]))
        if dram_count:
            source_counts[DataSource.DRAM] = dram_count
        if lfb >= 0.5:
            source_counts[DataSource.LFB] = int(round(lfb))

        ft_serve = ft_counts / ft_counts.sum() if ft_counts.sum() > 0 else ft_probs
        sample_sources = self._classify_samples(
            pattern, loc, samples, ft_serve, rep_level, first_touch, streaming_dram
        )
        sample_latencies = self.latency.sample(sample_sources, self._rng)

        # Update residency: this pattern's footprint is now (partially)
        # cached at every level, tail-first in sweep direction.  Store
        # footprints are dirty; their last-level eviction (now or by a
        # later pattern) is a writeback to memory.
        span = loc.hi - loc.lo
        density = min(1.0, loc.unique_bytes / span) if span > 0 else 1.0
        is_store = pattern.op == MemOp.STORE
        for lru in self._residency:
            lru.insert(loc.lo, loc.hi, loc.direction or 1, density, dirty=is_store)
        writebacks = int(
            round(self._residency[-1].take_evicted_dirty_bytes() / self.line_size)
        )

        return PatternResult(
            count=count,
            level_misses=level_misses,
            source_counts=source_counts,
            sample_sources=sample_sources,
            sample_latencies=sample_latencies,
            tlb_misses=int(ceil_div(loc.unique_bytes, 4096)) if count else 0,
            dram_lines=dram_lines,
            writeback_lines=writebacks,
        )

    def _classify_samples(
        self,
        pattern: AccessPattern,
        loc: Locality,
        samples: np.ndarray,
        ft_probs: np.ndarray,
        rep_level: int,
        first_touch: int,
        streaming_dram: bool,
    ) -> np.ndarray:
        """Data source per sampled access offset."""
        if samples.size == 0:
            return np.zeros(0, dtype=np.int64)
        n_levels = len(self._capacities)
        level_codes = np.array(
            [int(s) for s in (DataSource.L1, DataSource.L2, DataSource.L3)][:n_levels]
            + [int(DataSource.DRAM)],
            dtype=np.int64,
        )
        # Is each sample a first touch?
        if loc.kind == "seq" and pattern.elem_size < self.line_size:
            addrs = pattern.addresses_at(samples)
            offset_in_line = (addrs % np.uint64(self.line_size)).astype(np.int64)
            if loc.direction >= 0:
                is_first = offset_in_line < pattern.elem_size
            else:
                is_first = offset_in_line >= self.line_size - pattern.elem_size
        else:
            p_first = first_touch / max(loc.count, 1)
            is_first = self._rng.random(samples.size) < p_first

        out = np.empty(samples.size, dtype=np.int64)
        n_first = int(is_first.sum())
        if n_first:
            out[is_first] = self._rng.choice(
                level_codes, size=n_first, p=ft_probs / ft_probs.sum()
            )
        n_rep = samples.size - n_first
        if n_rep:
            rep_src = level_codes[min(rep_level, n_levels)]
            rep = np.full(n_rep, rep_src, dtype=np.int64)
            # A share of line-local repeats shows up as LFB hits.
            if streaming_dram and rep_level == 0 and self.lfb_fraction > 0:
                lfb_mask = self._rng.random(n_rep) < self.lfb_fraction
                rep[lfb_mask] = int(DataSource.LFB)
            out[~is_first] = rep
        return out

    def flush(self) -> None:
        """Drop all residency state (cold caches)."""
        for lru in self._residency:
            lru.flush()
