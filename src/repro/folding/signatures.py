"""Per-instance access-pattern signatures: the "memory access vector".

Representative-instance sampling needs a cheap way to tell which
instances of a folded region behave alike.  Following the memory-
access-vector idea (arXiv 2506.02344), each instance gets one feature
vector summarizing its access pattern:

* **counter deltas** — per-counter increment rate over the instance,
  from the same boundary-interpolated readings the exact fold uses
  (:func:`repro.folding.fold.boundary_values` /
  :func:`~repro.folding.fold.boundary_increments`);
* **data-source mix** — the fraction of the instance's samples served
  by each memory-hierarchy level (:class:`repro.memsim.datasource.DataSource`);
* **op-kind mix** — load/store sample fractions;
* **duration, sample count, mean latency** — scalar shape features.

Everything is computed in a handful of vectorized passes over the
time-sorted sample table: instance membership is two ``searchsorted``
calls against the :class:`~repro.folding.detect.FoldInstances`
boundaries (the row groups a :class:`~repro.extrae.index.TraceIndex`
time window would hand out), and the categorical mixes are one
``bincount`` each — no per-sample Python, O(instances) feature rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.extrae.trace import Trace
from repro.folding.detect import FoldInstances
from repro.folding.fold import boundary_increments, boundary_values
from repro.memsim.datasource import DataSource
from repro.memsim.patterns import MemOp
from repro.simproc.machine import SAMPLE_COUNTERS

__all__ = ["InstanceSignatures", "instance_sample_rows", "instance_signatures"]

#: Row cap for the categorical-mix features.  Above this, latency and
#: source/op mixes are estimated on a deterministic stride subsample —
#: the mixes are per-instance *fractions*, so a uniform-in-time stride
#: preserves them while keeping signature extraction O(cap) instead of
#: O(n_samples) on dense traces.  Counter deltas, durations and sample
#: counts always stay exact.
DEFAULT_SIGNATURE_ROWS = 1 << 18


def instance_sample_rows(
    t: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Rows of the time-sorted samples inside each ``[start, end)``.

    Returns ``(rows, idx)``: the ascending row indices of every sample
    falling inside one of the (disjoint, start-sorted — the
    :class:`~repro.folding.detect.FoldInstances` construction
    guarantees both) intervals, and each row's interval index.  For the
    full interval set this selects exactly the samples the exact fold's
    inside-mask keeps, in the same order — two ``searchsorted`` calls
    plus O(kept) assembly instead of an O(n_samples) mask.
    """
    lo = np.searchsorted(t, starts, side="left")
    hi = np.searchsorted(t, ends, side="left")
    counts = hi - lo
    total = int(counts.sum())
    idx = np.repeat(np.arange(starts.size), counts)
    if total == 0:
        return np.empty(0, dtype=np.int64), idx
    rows = (
        np.arange(total, dtype=np.int64)
        - np.repeat(np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
        + np.repeat(lo, counts)
    )
    return rows, idx


@dataclass(frozen=True)
class InstanceSignatures:
    """One access-pattern feature vector per fold instance."""

    instances: FoldInstances
    feature_names: tuple[str, ...]
    #: ``(n_instances, n_features)`` raw feature matrix
    features: np.ndarray

    @property
    def n(self) -> int:
        return int(self.features.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.features.shape[1])

    def normalized(self) -> np.ndarray:
        """Z-scored features (constant columns become exactly zero).

        The clustering distance should not be dominated by whichever
        feature happens to carry the largest units, so each column is
        centered and scaled by its standard deviation.
        """
        mean = self.features.mean(axis=0)
        std = self.features.std(axis=0)
        scale = np.where(std > 0.0, std, 1.0)
        return (self.features - mean) / scale


def instance_signatures(
    trace: Trace,
    instances: FoldInstances,
    max_rows: int | None = DEFAULT_SIGNATURE_ROWS,
) -> InstanceSignatures:
    """Compute the per-instance signature matrix of *instances*.

    Counter deltas come from the identical boundary interpolation the
    exact fold performs; categorical mixes are fractions of each
    instance's own samples (an instance without samples gets an all-zero
    mix, distinguishing it through the count/duration features instead).
    On traces with more than *max_rows* in-instance samples the mixes
    and mean latency are estimated on a deterministic stride subsample
    (``max_rows=None`` disables the cap); duration, sample count and
    counter-delta features are always exact.
    """
    table = trace.sample_table()
    t = table.time_ns
    starts = instances.starts_ns
    ends = instances.ends_ns
    durations = instances.durations_ns
    n_inst = instances.n

    names: list[str] = []
    columns: list[np.ndarray] = []

    for name in SAMPLE_COUNTERS:
        series = table.column(name)
        totals, _, _ = boundary_increments(
            boundary_values(t, series, starts),
            boundary_values(t, series, ends),
        )
        names.append(f"{name}_per_ns")
        columns.append(totals / durations)

    rows, idx = instance_sample_rows(t, starts, ends)
    counts = np.bincount(idx, minlength=n_inst).astype(np.float64)

    names.append("duration_ns")
    columns.append(durations.astype(np.float64))
    names.append("n_samples")
    columns.append(counts)

    if max_rows is not None and rows.size > max_rows:
        stride = -(-rows.size // max_rows)
        rows, idx = rows[::stride], idx[::stride]
        denom = np.maximum(
            np.bincount(idx, minlength=n_inst).astype(np.float64), 1.0
        )
    else:
        denom = np.maximum(counts, 1.0)

    latency = table.latency[rows].astype(np.float64)
    names.append("latency_mean")
    columns.append(np.bincount(idx, weights=latency, minlength=n_inst) / denom)

    n_src = int(max(DataSource)) + 1
    src = table.source[rows].astype(np.int64)
    src_mix = np.bincount(
        idx * n_src + src, minlength=n_inst * n_src
    ).reshape(n_inst, n_src)
    for code in DataSource:
        names.append(f"src_{code.name.lower()}")
        columns.append(src_mix[:, int(code)] / denom)

    op = table.op[rows].astype(np.int64)
    n_ops = int(max(MemOp)) + 1
    op_mix = np.bincount(
        idx * n_ops + op, minlength=n_inst * n_ops
    ).reshape(n_inst, n_ops)
    for kind in MemOp:
        names.append(f"op_{kind.name.lower()}")
        columns.append(op_mix[:, int(kind)] / denom)

    return InstanceSignatures(
        instances=instances,
        feature_names=tuple(names),
        features=np.column_stack(columns),
    )
