"""Terminal rendering of the folded three-panel figure.

A dependency-free (no matplotlib) renderer that draws the paper's
Figure 1 as text: a phase strip (code direction), the address scatter
split into its lower/heap and upper/mmap blocks (memory direction, with
loads as ``·`` and stores as ``#`` — the paper's black points), and the
MIPS/miss-rate curves (performance direction).
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_address_panel", "render_counter_panel", "render_figure",
           "render_phase_strip"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def render_phase_strip(phases, width: int = 100) -> str:
    """One-character-per-column strip of the phase labels."""
    strip = [" "] * width
    for p in phases:
        if len(p.label) != 1:
            continue  # sublabels drawn below
        lo = int(p.lo * width)
        hi = max(lo + 1, int(p.hi * width))
        for i in range(lo, min(hi, width)):
            strip[i] = p.label
    sub = [" "] * width
    for p in phases:
        if len(p.label) == 1:
            continue
        lo = int(p.lo * width)
        hi = max(lo + 1, int(p.hi * width))
        mid = (lo + hi) // 2
        for i, ch in enumerate(p.label):
            if mid + i < width:
                sub[mid + i] = ch
    return "".join(strip) + "\n" + "".join(sub)


def _scatter_block(sigma, address, is_store, lo, hi, width, height) -> list[str]:
    """One scatter block over address range [lo, hi)."""
    grid = np.zeros((height, width), dtype=np.int8)  # 0 empty, 1 load, 2 store
    sel = (address >= lo) & (address < hi)
    if sel.any():
        col = np.clip((sigma[sel] * width).astype(int), 0, width - 1)
        rel = (address[sel] - lo).astype(np.float64) / max(hi - lo, 1)
        # Row 0 is the TOP of the block (highest addresses).
        r = np.clip(((1.0 - rel) * height).astype(int), 0, height - 1)
        stores = is_store[sel]
        for c, rr, st in zip(col, r, stores):
            grid[rr, c] = max(grid[rr, c], 2 if st else 1)
    rows = []
    for rr in range(height):
        chars = np.where(grid[rr] == 2, "#", np.where(grid[rr] == 1, "·", " "))
        rows.append("".join(chars))
    return rows


def render_address_panel(
    report, width: int = 100, height: int = 16
) -> str:
    """The folded address scatter, split at the heap/mmap gap.

    The largest address gap between occupied bands splits the panel
    into a lower block (the matrix on the heap) and an upper block (the
    vectors in the mmap region), like the paper's two tick-label sets.

    *report* is anything carrying an address view — a resident
    :class:`FoldedReport`, a streamed
    :class:`~repro.folding.stream_views.StreamedReport` (the panel
    then renders the reservoir points), or a bare address view itself
    (``FoldedAddresses``/``StreamedAddresses``).
    """
    a = getattr(report, "addresses", report)
    if a is None:
        return "(no address direction)"
    if a.n == 0:
        return "(no samples)"
    addrs = np.sort(np.unique(a.address))
    if addrs.size > 1:
        gaps = np.diff(addrs)
        split_at = int(np.argmax(gaps))
        split_addr = int(addrs[split_at]) + 1
        has_split = gaps[split_at] > 16 * (int(addrs[-1]) - int(addrs[0])) // 100
    else:
        has_split = False
    stores = a.stores
    out = []
    if has_split:
        upper_lo = int(addrs[split_at + 1])
        upper_hi = int(addrs[-1]) + 1
        lower_lo = int(addrs[0])
        lower_hi = split_addr
        out.append(f"upper block [{upper_lo:#x}, {upper_hi:#x})  (mmap: vectors)")
        out.extend(_scatter_block(a.sigma, a.address, stores,
                                  upper_lo, upper_hi, width, height // 2))
        out.append(f"lower block [{lower_lo:#x}, {lower_hi:#x})  (heap: matrix)")
        out.extend(_scatter_block(a.sigma, a.address, stores,
                                  lower_lo, lower_hi, width, height - height // 2))
    else:
        lo, hi = int(addrs[0]), int(addrs[-1]) + 1
        out.append(f"addresses [{lo:#x}, {hi:#x})")
        out.extend(_scatter_block(a.sigma, a.address, stores, lo, hi, width, height))
    out.append("· load   # store")
    return "\n".join(out)


def _curve_row(values: np.ndarray, width: int, vmax: float) -> str:
    """One row of block characters for a curve resampled to *width*."""
    idx = np.linspace(0, values.size - 1, width).astype(int)
    v = values[idx]
    levels = np.clip((v / max(vmax, 1e-12) * (len(_BLOCKS) - 1)).astype(int),
                     0, len(_BLOCKS) - 1)
    return "".join(_BLOCKS[k] for k in levels)


def render_counter_panel(report, width: int = 100) -> str:
    """MIPS plus the per-instruction miss/branch rates as sparklines.

    Accepts anything with fitted ``counters`` — a resident
    :class:`FoldedReport` or a streamed report/fold.
    """
    c = report.counters
    mips = c.mips()
    rows = [
        f"MIPS (max {mips.max():7,.0f}) {_curve_row(mips, width, mips.max())}"
    ]
    for name, label in (
        ("branches", "branches/i"),
        ("l1d_misses", "L1D miss/i"),
        ("l2_misses", "L2 miss/i "),
        ("l3_misses", "L3 miss/i "),
    ):
        rate = c.per_instruction(name)
        rows.append(
            f"{label} (max {rate.max():.4f}) {_curve_row(rate, width, rate.max())}"
        )
    return "\n".join(rows)


def render_figure(report, phases=None, width: int = 100) -> str:
    """The full three-panel text figure (resident or streamed)."""
    parts = []
    if phases is not None:
        parts.append("— code (phases) " + "—" * max(0, width - 16))
        parts.append(render_phase_strip(phases, width))
    parts.append("— addresses referenced " + "—" * max(0, width - 23))
    parts.append(render_address_panel(report, width))
    parts.append("— counters / MIPS " + "—" * max(0, width - 18))
    parts.append(render_counter_panel(report, width))
    axis = "0" + " " * (width // 2 - 2) + "σ" + " " * (width - width // 2 - 2) + "1"
    parts.append(axis)
    return "\n".join(parts)
