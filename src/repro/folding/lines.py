"""The folded source-code view.

Every sample carries the call-stack the tracer maintained when it was
taken; its leaf frame names the source line executing at that moment.
Folding those gives the top panel of Figure 1 — which code line runs at
each normalized time — from which phases (A, B, C, D, E) are directly
readable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.extrae.trace import Trace
from repro.folding.fold import FoldedSamples

__all__ = ["FoldedLines", "fold_lines"]


@dataclass
class FoldedLines:
    """Folded (σ, source line) points.

    ``line_table[i]`` is a ``(function, file, line)`` triple;
    ``line_id`` indexes into it.  ``region_id``/``region_table`` give
    the coarser instrumented-region identity of each sample (the
    label A/B/C/D/E annotations derive from these).
    """

    sigma: np.ndarray
    line_id: np.ndarray
    line_table: list[tuple[str, str, int]]
    region_id: np.ndarray
    region_table: list[str]

    @property
    def n(self) -> int:
        return int(self.sigma.size)

    def line_of(self, index: int) -> tuple[str, str, int]:
        return self.line_table[int(self.line_id[index])]

    def dominant_region(self, lo: float, hi: float) -> str:
        """Most common region among samples with σ in [lo, hi)."""
        mask = (self.sigma >= lo) & (self.sigma < hi)
        if not mask.any():
            raise ValueError(f"no samples in window [{lo}, {hi})")
        ids, counts = np.unique(self.region_id[mask], return_counts=True)
        return self.region_table[int(ids[np.argmax(counts)])]

    def region_sequence(self, min_run: int = 5) -> list[str]:
        """Regions in σ order, runs shorter than *min_run* samples
        dropped, consecutive duplicates collapsed."""
        order = np.argsort(self.sigma, kind="stable")
        ids = self.region_id[order]
        out: list[str] = []
        run_id, run_len = None, 0
        for i in ids:
            if i == run_id:
                run_len += 1
            else:
                if run_id is not None and run_len >= min_run:
                    name = self.region_table[int(run_id)]
                    if not out or out[-1] != name:
                        out.append(name)
                run_id, run_len = i, 1
        if run_id is not None and run_len >= min_run:
            name = self.region_table[int(run_id)]
            if not out or out[-1] != name:
                out.append(name)
        return out


def fold_lines(folded: FoldedSamples, trace: Trace) -> FoldedLines:
    """Extract the folded source-line track from the samples.

    The *region* of a sample is the innermost instrumented region
    (second-to-leaf frame when the batch added a source-line leaf); the
    *line* is the leaf frame itself.
    """
    table = folded.table
    cs_ids = table.callstack_id
    unique_ids = np.unique(cs_ids)

    line_table: list[tuple[str, str, int]] = []
    line_lookup: dict[tuple[str, str, int], int] = {}
    region_table: list[str] = []
    region_lookup: dict[str, int] = {}
    per_cs_line = {}
    per_cs_region = {}
    for cs_id in unique_ids:
        stack = trace.callstack(int(cs_id))
        leaf = stack.leaf
        key = (leaf.function, leaf.file, leaf.line)
        if key not in line_lookup:
            line_lookup[key] = len(line_table)
            line_table.append(key)
        per_cs_line[int(cs_id)] = line_lookup[key]
        # Innermost *instrumented* frame: the leaf's function if depth
        # 2, else the frame whose function the region was named after.
        region = stack.frames[-2].function if stack.depth >= 2 else leaf.function
        if leaf.function != region and leaf.function.startswith("Compute"):
            region = leaf.function
        if region not in region_lookup:
            region_lookup[region] = len(region_table)
            region_table.append(region)
        per_cs_region[int(cs_id)] = region_lookup[region]

    line_id = np.array([per_cs_line[int(i)] for i in cs_ids], dtype=np.int64)
    region_id = np.array([per_cs_region[int(i)] for i in cs_ids], dtype=np.int64)
    return FoldedLines(
        sigma=folded.sigma,
        line_id=line_id,
        line_table=line_table,
        region_id=region_id,
        region_table=region_table,
    )
