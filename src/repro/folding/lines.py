"""The folded source-code view.

Every sample carries the call-stack the tracer maintained when it was
taken; its leaf frame names the source line executing at that moment.
Folding those gives the top panel of Figure 1 — which code line runs at
each normalized time — from which phases (A, B, C, D, E) are directly
readable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.extrae.trace import Trace
from repro.folding.fold import FoldedSamples
from repro.vmem.callstack import CallStack

__all__ = ["FoldedLines", "LineTableBuilder", "fold_lines", "leaf_and_region"]


def leaf_and_region(stack: CallStack) -> tuple[tuple[str, str, int], str]:
    """A call-stack's source line key and instrumented-region name.

    The *line* is the leaf frame ``(function, file, line)``; the
    *region* is the innermost instrumented frame — the second-to-leaf
    frame's function when the batch pushed a source-line leaf, except
    that a ``Compute*`` leaf names its own region (the HPCG compute
    kernels are instrumented at the function itself).  Shared by the
    resident :func:`fold_lines` and the streamed line direction
    (:mod:`repro.folding.stream_views`), so both derive identical
    tables from identical call-stacks.
    """
    leaf = stack.leaf
    key = (leaf.function, leaf.file, leaf.line)
    region = stack.frames[-2].function if stack.depth >= 2 else leaf.function
    if leaf.function != region and leaf.function.startswith("Compute"):
        region = leaf.function
    return key, region


class LineTableBuilder:
    """Incremental interner of call-stacks into line/region tables.

    Feed call-stack ids through :meth:`intern`; line keys and region
    names are appended to :attr:`line_table`/:attr:`region_table` in
    the order the ids are first seen, and :meth:`line_ids_of` /
    :meth:`region_ids_of` map id arrays onto the tables with one
    vectorized lookup.  The resident fold interns the trace's sorted
    unique ids once; the streaming fold interns each chunk's unseen
    ids as they arrive (chunk-invariant: an id's first appearance in a
    time-ordered stream does not depend on the chunking).
    """

    def __init__(self, resolver) -> None:
        #: ``resolver(cs_id) -> CallStack`` (usually ``Trace.callstack``)
        self._resolver = resolver
        self.line_table: list[tuple[str, str, int]] = []
        self.region_table: list[str] = []
        self._line_lookup: dict[tuple[str, str, int], int] = {}
        self._region_lookup: dict[str, int] = {}
        self._cs_line: dict[int, int] = {}
        self._cs_region: dict[int, int] = {}

    def bind(self, resolver) -> None:
        """Late-bind the call-stack resolver (live Tracer wiring)."""
        self._resolver = resolver

    def intern(self, cs_ids) -> None:
        """Register call-stack ids (iterated in the given order)."""
        if self._resolver is None:
            raise ValueError(
                "no call-stack resolver bound — pass one at construction "
                "or via bind()"
            )
        for cs_id in cs_ids:
            cs_id = int(cs_id)
            if cs_id in self._cs_line:
                continue
            key, region = leaf_and_region(self._resolver(cs_id))
            if key not in self._line_lookup:
                self._line_lookup[key] = len(self.line_table)
                self.line_table.append(key)
            self._cs_line[cs_id] = self._line_lookup[key]
            if region not in self._region_lookup:
                self._region_lookup[region] = len(self.region_table)
                self.region_table.append(region)
            self._cs_region[cs_id] = self._region_lookup[region]

    def _map(self, table: dict[int, int], cs_ids: np.ndarray) -> np.ndarray:
        uniq = np.unique(np.asarray(cs_ids))
        vals = np.array([table[int(i)] for i in uniq], dtype=np.int64)
        # One fancy-indexed gather per sample instead of a Python loop.
        return vals[np.searchsorted(uniq, np.asarray(cs_ids))]

    def line_ids_of(self, cs_ids: np.ndarray) -> np.ndarray:
        """Vectorized per-sample line ids (every id must be interned)."""
        return self._map(self._cs_line, cs_ids)

    def region_ids_of(self, cs_ids: np.ndarray) -> np.ndarray:
        """Vectorized per-sample region ids."""
        return self._map(self._cs_region, cs_ids)


@dataclass
class FoldedLines:
    """Folded (σ, source line) points.

    ``line_table[i]`` is a ``(function, file, line)`` triple;
    ``line_id`` indexes into it.  ``region_id``/``region_table`` give
    the coarser instrumented-region identity of each sample (the
    label A/B/C/D/E annotations derive from these).
    """

    sigma: np.ndarray
    line_id: np.ndarray
    line_table: list[tuple[str, str, int]]
    region_id: np.ndarray
    region_table: list[str]

    @property
    def n(self) -> int:
        return int(self.sigma.size)

    def line_of(self, index: int) -> tuple[str, str, int]:
        return self.line_table[int(self.line_id[index])]

    def dominant_region(self, lo: float, hi: float) -> str:
        """Most common region among samples with σ in [lo, hi)."""
        mask = (self.sigma >= lo) & (self.sigma < hi)
        if not mask.any():
            raise ValueError(f"no samples in window [{lo}, {hi})")
        ids, counts = np.unique(self.region_id[mask], return_counts=True)
        return self.region_table[int(ids[np.argmax(counts)])]

    def region_sequence(self, min_run: int = 5) -> list[str]:
        """Regions in σ order, runs shorter than *min_run* samples
        dropped, consecutive duplicates collapsed."""
        order = np.argsort(self.sigma, kind="stable")
        ids = self.region_id[order]
        out: list[str] = []
        run_id, run_len = None, 0
        for i in ids:
            if i == run_id:
                run_len += 1
            else:
                if run_id is not None and run_len >= min_run:
                    name = self.region_table[int(run_id)]
                    if not out or out[-1] != name:
                        out.append(name)
                run_id, run_len = i, 1
        if run_id is not None and run_len >= min_run:
            name = self.region_table[int(run_id)]
            if not out or out[-1] != name:
                out.append(name)
        return out


def fold_lines(folded: FoldedSamples, trace: Trace) -> FoldedLines:
    """Extract the folded source-line track from the samples.

    The *region* of a sample is the innermost instrumented region
    (second-to-leaf frame when the batch added a source-line leaf); the
    *line* is the leaf frame itself.
    """
    table = folded.table
    cs_ids = table.callstack_id
    # Intern the sorted unique ids (the historical table order), then
    # map per-sample ids with one vectorized gather — the tables are
    # built once per trace from O(unique call-stacks) Python work, and
    # the per-sample loops are gone.
    builder = LineTableBuilder(trace.callstack)
    builder.intern(np.unique(cs_ids))
    return FoldedLines(
        sigma=folded.sigma,
        line_id=builder.line_ids_of(cs_ids),
        line_table=builder.line_table,
        region_id=builder.region_ids_of(cs_ids),
        region_table=builder.region_table,
    )
