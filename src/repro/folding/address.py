"""The folded address-space view — this paper's headline extension.

Each retained memory sample becomes a point ``(σ, address)`` carrying
its operation (load/store), data source, access latency and — once
resolved — its data object.  This is the middle panel of Figure 1:
address ramps reveal sweep direction, black (store) points reveal
which regions are written, and object annotations name the streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.folding.fold import FoldedSamples
from repro.memsim.patterns import MemOp
from repro.objects.registry import DataObjectRegistry

__all__ = ["AddressBand", "FoldedAddresses", "fold_addresses"]


@dataclass(frozen=True)
class AddressBand:
    """A labelled address range shown alongside the scatter (object
    extents, halo annotations like the paper's ghost/bottom/top)."""

    label: str
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.hi <= self.lo:
            raise ValueError(f"band {self.label!r} is empty")


@dataclass
class FoldedAddresses:
    """The folded address scatter plus its annotations."""

    sigma: np.ndarray
    address: np.ndarray
    op: np.ndarray
    source: np.ndarray
    latency: np.ndarray
    #: resolved object index (into ``registry.records``), -1 unmatched
    object_index: np.ndarray
    registry: DataObjectRegistry
    bands: list[AddressBand] = field(default_factory=list)

    @property
    def n(self) -> int:
        return int(self.sigma.size)

    @property
    def loads(self) -> np.ndarray:
        return self.op == int(MemOp.LOAD)

    @property
    def stores(self) -> np.ndarray:
        return self.op == int(MemOp.STORE)

    def matched_fraction(self) -> float:
        return float((self.object_index >= 0).mean()) if self.n else 0.0

    def annotate(self, label: str, lo: int, hi: int) -> None:
        self.bands.append(AddressBand(label, lo, hi))

    def in_range(self, lo: int, hi: int) -> np.ndarray:
        """Mask of samples whose address falls in ``[lo, hi)``."""
        return (self.address >= lo) & (self.address < hi)

    def stores_in_range(self, lo: int, hi: int) -> int:
        """Number of sampled stores within an address range — the
        paper's 'no stores in the lower part' check."""
        return int((self.stores & self.in_range(lo, hi)).sum())

    def object_samples(self, name: str) -> np.ndarray:
        """Mask of samples resolved to the object called *name*.

        Resolved through the registry's cached name→index map
        (O(1) after the first query) instead of scanning the records.
        """
        return self.object_index == self.registry.index_of(name)

    def sweep_of(self, mask: np.ndarray) -> tuple[float, float]:
        """Linear fit ``address ≈ a + b·σ`` over the masked samples;
        returns (intercept, slope).  Positive slope = forward sweep."""
        if mask.sum() < 2:
            raise ValueError("need at least two samples to fit a sweep")
        s = self.sigma[mask]
        a = self.address[mask].astype(np.float64)
        slope, intercept = np.polyfit(s, a, 1)
        return float(intercept), float(slope)


def fold_addresses(
    folded: FoldedSamples, registry: DataObjectRegistry
) -> FoldedAddresses:
    """Build the folded address view and resolve every sample."""
    table = folded.table
    return FoldedAddresses(
        sigma=folded.sigma,
        address=table.address,
        op=table.op.astype(np.int64),
        source=table.source.astype(np.int64),
        latency=table.latency.astype(np.float64),
        object_index=registry.resolve_bulk(table.address),
        registry=registry,
    )
