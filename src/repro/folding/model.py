"""Folded counter curves: the performance direction of the report.

For each hardware counter the folded samples give scattered points
``(sigma, cumulative fraction)``.  The model fits a smooth monotone
cumulative curve through them (Gaussian-kernel regression projected
onto the monotone cone with PAVA — the role Kriging plays in the
original tool) and differentiates it into an instantaneous *rate*.

Rates are reported in physically meaningful units:

* ``mips(σ)`` — millions of instructions per second of instance time;
* ``per_instruction(counter)(σ)`` — e.g. L3 misses per instruction,
  the bottom panel of the paper's Figure 1;
* ``ipc(σ)`` — instructions per cycle.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.folding.fold import FoldedSamples
from repro.simproc.machine import SAMPLE_COUNTERS
from repro.util.pava import BinnedDesign, fit_design, make_design

__all__ = [
    "FoldedCounters",
    "FoldedCurve",
    "counter_design",
    "fit_counter_curves",
    "fold_counters",
    "merge_counters",
]


@dataclass
class FoldedCurve:
    """One counter's folded evolution.

    Attributes
    ----------
    sigma:
        Normalized-time grid in [0, 1].
    cumulative:
        Monotone cumulative fraction fit, F(σ) ∈ [0, 1].
    rate:
        dF/dσ · (mean per-instance total) / (mean instance duration) —
        the instantaneous counter rate per nanosecond of instance time.
    total_mean:
        Mean per-instance increment of the counter.
    """

    name: str
    sigma: np.ndarray
    cumulative: np.ndarray
    rate: np.ndarray
    total_mean: float

    def at(self, sigma: float) -> float:
        """Rate at normalized time *sigma* (linear interpolation)."""
        return float(np.interp(sigma, self.sigma, self.rate))

    def mean_rate(self, lo: float = 0.0, hi: float = 1.0) -> float:
        """Average rate over a σ window."""
        mask = (self.sigma >= lo) & (self.sigma <= hi)
        if not mask.any():
            raise ValueError(f"empty window [{lo}, {hi}]")
        return float(self.rate[mask].mean())


@dataclass
class FoldedCounters:
    """All folded counter curves of one region."""

    curves: dict[str, FoldedCurve]
    duration_ns: float  # mean instance duration

    def __getitem__(self, name: str) -> FoldedCurve:
        return self.curves[name]

    def __contains__(self, name: str) -> bool:
        return name in self.curves

    @property
    def sigma(self) -> np.ndarray:
        return next(iter(self.curves.values())).sigma

    def mips(self) -> np.ndarray:
        """Instruction rate in MIPS along σ (rate is per ns)."""
        return self.curves["instructions"].rate * 1e3

    def per_instruction(self, name: str) -> np.ndarray:
        """Counter rate per instruction along σ (Fig. 1 bottom panel)."""
        instr = self.curves["instructions"].rate
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(instr > 0, self.curves[name].rate / instr, 0.0)
        return out

    def ipc(self) -> np.ndarray:
        """Instructions per cycle along σ."""
        cyc = self.curves["cycles"].rate
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(cyc > 0, self.curves["instructions"].rate / cyc, 0.0)

    def window_duration_ns(self, lo: float, hi: float) -> float:
        """Wall-clock length of a σ window in the mean instance."""
        if not 0.0 <= lo < hi <= 1.0:
            raise ValueError(f"bad window [{lo}, {hi}]")
        return (hi - lo) * self.duration_ns

    def digest(self) -> str:
        """Content digest of the fitted curves (hex SHA-256).

        Hashes every curve's grid, cumulative fit, rate and mean total
        plus the mean instance duration — byte-exact, so two folds
        agree on the digest iff their fitted output is bit-identical.
        The streaming-fold tests and ``bench_streamfold`` compare
        streamed against resident folds through this.
        """
        h = hashlib.sha256()
        h.update(np.float64(self.duration_ns).tobytes())
        for name in sorted(self.curves):
            c = self.curves[name]
            h.update(name.encode())
            h.update(np.float64(c.total_mean).tobytes())
            for arr in (c.sigma, c.cumulative, c.rate):
                h.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
        return h.hexdigest()


def merge_counters(
    folded: Sequence[FoldedCounters],
    weights: Sequence[float] | None = None,
) -> FoldedCounters:
    """Weighted mean of several folded counter sets on one σ grid.

    The cross-rank merge: each input is one rank's per-instance mean
    curve, so weighting by that rank's instance count makes the result
    the mean over *all* instances of the cluster.  All inputs must have
    been fit on the same grid with the same counter set; curves,
    per-instance totals and mean durations are combined with the same
    weights, so derived rates (``mips()``, ``per_instruction()``) stay
    internally consistent.
    """
    if not folded:
        raise ValueError("cannot merge zero folded counter sets")
    first = folded[0]
    names = tuple(first.curves)
    grid = first.sigma
    if weights is None:
        w = np.ones(len(folded), dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.size != len(folded) or (w < 0).any() or w.sum() <= 0:
            raise ValueError(
                f"need {len(folded)} nonnegative weights with positive sum"
            )
    w = w / w.sum()
    for c in folded[1:]:
        if tuple(c.curves) != names:
            raise ValueError("folded counter sets disagree on counter names")
        if c.sigma.size != grid.size or not np.array_equal(c.sigma, grid):
            raise ValueError("folded counter sets disagree on the σ grid")
    curves: dict[str, FoldedCurve] = {}
    for name in names:
        cumulative = sum(
            wi * c.curves[name].cumulative for wi, c in zip(w, folded)
        )
        rate = sum(wi * c.curves[name].rate for wi, c in zip(w, folded))
        total = float(
            sum(wi * c.curves[name].total_mean for wi, c in zip(w, folded))
        )
        curves[name] = FoldedCurve(
            name=name,
            sigma=grid,
            cumulative=cumulative,
            rate=rate,
            total_mean=total,
        )
    duration = float(sum(wi * c.duration_ns for wi, c in zip(w, folded)))
    return FoldedCounters(curves=curves, duration_ns=duration)


def counter_design(
    folded: FoldedSamples,
    counters: tuple[str, ...] = SAMPLE_COUNTERS,
) -> BinnedDesign:
    """The shared kernel-regression design of *folded*'s counters.

    One row per counter, in *counters* order.  Grid- and bandwidth-
    independent: :class:`~repro.folding.plan.FoldPlan` caches it and
    sweeps fit parameters against it.
    """
    if folded.n == 0:
        raise ValueError("cannot fold counters without samples")
    Y = np.stack([folded.fractions[name] for name in counters])
    return make_design(folded.sigma, Y)


def fold_counters(
    folded: FoldedSamples,
    grid_points: int = 201,
    bandwidth: float = 0.015,
    counters: tuple[str, ...] = SAMPLE_COUNTERS,
    design: BinnedDesign | None = None,
) -> FoldedCounters:
    """Fit the folded cumulative/rate curves of every counter.

    All counters share one Gaussian weight matrix over (grid × samples):
    the kernel is built once and applied to every counter as a single
    matmul, then the monotone projection runs row-wise (batched PAVA).

    Parameters
    ----------
    folded:
        Projected samples (from :func:`repro.folding.fold.fold_samples`).
    grid_points:
        Evaluation grid resolution over [0, 1].
    bandwidth:
        Gaussian kernel width in σ units; the ablation bench
        ``benchmarks/test_ablation_kernel.py`` sweeps this.
    design:
        Precomputed :func:`counter_design` (rows in *counters* order) —
        pass it to reuse the sample-side work across parameter sweeps.
    """
    if folded.n == 0:
        raise ValueError("cannot fold counters without samples")
    if design is None:
        design = counter_design(folded, counters)
    return fit_counter_curves(
        design,
        grid_points=grid_points,
        bandwidth=bandwidth,
        counters=counters,
        totals_mean={
            name: folded.counter_total_mean(name) for name in counters
        },
        duration_ns=folded.instances.mean_duration_ns,
    )


def fit_counter_curves(
    design: BinnedDesign,
    *,
    grid_points: int = 201,
    bandwidth: float = 0.015,
    counters: tuple[str, ...] = SAMPLE_COUNTERS,
    totals_mean: Mapping[str, float],
    duration_ns: float,
) -> FoldedCounters:
    """Fit :class:`FoldedCounters` from a design plus instance stats.

    The design-to-curves half of :func:`fold_counters`, factored out so
    a streaming fold — which accumulates the design chunk by chunk and
    never holds a :class:`~repro.folding.fold.FoldedSamples` — produces
    its curves through the *same* code path as the resident fold.
    """
    if design.n_targets != len(counters):
        raise ValueError(
            f"design has {design.n_targets} targets for {len(counters)} counters"
        )
    grid = np.linspace(0.0, 1.0, grid_points)
    fits = fit_design(design, grid, bandwidth)
    curves: dict[str, FoldedCurve] = {}
    for row, name in enumerate(counters):
        # Pin the cumulative ends: an instance starts at 0 and ends at 1
        # by construction.
        cumulative = np.clip(fits[row], 0.0, 1.0)
        rate_sigma = np.gradient(cumulative, grid)
        rate_sigma = np.maximum(rate_sigma, 0.0)
        total = float(totals_mean[name])
        curves[name] = FoldedCurve(
            name=name,
            sigma=grid,
            cumulative=cumulative,
            rate=rate_sigma * total / duration_ns,
            total_mean=total,
        )
    return FoldedCounters(curves=curves, duration_ns=duration_ns)
