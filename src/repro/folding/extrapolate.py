"""Extrapolated folds: fold only representatives, reweight, bound error.

The expensive half of a fold is per-sample — projecting every kept
sample onto σ and aggregating the kernel-regression design.  With a
:class:`~repro.folding.reps.Representatives` selection the design is
built **only from the medoid instances' samples**, each weighted by its
cluster size, so the per-sample cost scales with the representative
budget instead of the instance count.  Per-instance *totals* and
degenerate flags stay exact for every instance: they come from the same
O(instances) boundary interpolation the exact fold performs, so the
extrapolation only ever approximates curve *shape*, never the
bookkeeping the validator checks.

Exactness contract (the ``rep_budget = n_instances`` acceptance test):
with an exhaustive selection the weighted pipeline degenerates to the
exact fold **bit for bit** —

* the per-instance searchsorted slices select the exact-fold rows in
  the same time order;
* σ and the cumulative fractions use the same expressions over the
  same boundary readings (:func:`~repro.folding.fold.boundary_values` /
  :func:`~repro.folding.fold.boundary_increments`);
* all-ones weights through :func:`~repro.util.pava.make_design` are
  value-identical to the unweighted design (multiplying by 1.0 is
  exact), and weighted means ``(v·w).sum()/w.sum()`` with unit weights
  reproduce ``v.mean()`` to the last bit (same pairwise summation);

so :func:`~repro.folding.stream.fold_digest` of the extrapolated fold
equals the exact fold's digest.  The property suite and
``benchmarks/perf/bench_reps.py`` enforce this.

For ``budget < n`` the fidelity loss is **measured, not assumed**:
:func:`measure_fidelity` folds both ways and reports per-counter max
relative curve error plus totals error as a :class:`FidelityBound` —
computed on small digest-checked runs, carried as metadata on large
ones (the memory-access-vectors protocol, arXiv 2506.02344).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.extrae.trace import Trace
from repro.folding.detect import FoldInstances
from repro.folding.fold import boundary_increments, boundary_values, fold_samples
from repro.folding.model import FoldedCounters, fit_counter_curves, fold_counters
from repro.folding.reps import (
    Representatives,
    derive_instances,
    select_representatives,
)
from repro.folding.signatures import instance_sample_rows
from repro.folding.stream import StreamedFold, fold_digest
from repro.simproc.machine import SAMPLE_COUNTERS
from repro.util.pava import make_design

__all__ = [
    "ExtrapolatedFold",
    "FidelityBound",
    "exact_performance_fold",
    "extrapolated_fold",
    "measure_fidelity",
]


@dataclass(frozen=True)
class FidelityBound:
    """Measured error of an extrapolated fold vs. the exact fold.

    The headline bound is ``curve_error``: the per-counter maximum
    pointwise distance between the extrapolated and exact *cumulative*
    curves.  Both curves live in [0, 1] by construction, so this is a
    relative error (a Kolmogorov–Smirnov-style distance over σ) — the
    statistic the ≤2% bench tripwire gates on.  ``rate_error`` is the
    same maximum over the derived rate curves, normalized by the exact
    peak rate; it is reported as a diagnostic only, because a sharp
    phase transition whose σ position jitters between instances moves
    the max pointwise *derivative* error by the full step height even
    when the folds agree everywhere else.
    """

    budget: int
    n_instances: int
    seed: int
    #: counter -> max |F_ext(σ) − F_exact(σ)| over the cumulative curves
    curve_error: dict[str, float]
    #: counter -> max |rate_ext − rate_exact| / max |rate_exact|
    rate_error: dict[str, float]
    #: counter -> |total_ext − total_exact| / |total_exact|
    total_error: dict[str, float]
    exact_digest: str
    extrapolated_digest: str

    @property
    def max_curve_error(self) -> float:
        return max(self.curve_error.values())

    @property
    def max_rate_error(self) -> float:
        return max(self.rate_error.values())

    @property
    def max_total_error(self) -> float:
        return max(self.total_error.values())

    @property
    def digest_match(self) -> bool:
        """True iff the two folds are bit-identical (exhaustive budget)."""
        return self.exact_digest == self.extrapolated_digest

    def summary(self) -> str:
        return (
            f"fidelity vs exact fold ({self.budget}/{self.n_instances} "
            f"instances, seed {self.seed}): max curve error "
            f"{self.max_curve_error * 100:.3f}%, max totals error "
            f"{self.max_total_error * 100:.3f}%"
            + (", digest-identical" if self.digest_match else "")
        )


@dataclass
class ExtrapolatedFold:
    """A counters-only fold extrapolated from weighted representatives.

    Duck-compatible with :class:`~repro.folding.stream.StreamedFold`
    (same performance-direction surface:
    instances/counters/totals/degenerate/n_folded, ``digest()``,
    ``summary()``, ``export_gnuplot()``), so
    :func:`~repro.folding.stream.fold_digest` and the counters exporter
    apply unchanged.  ``instances``/``totals``/``degenerate`` cover
    *all* instances — only the fitted curves are extrapolated.
    """

    instances: FoldInstances
    counters: FoldedCounters
    totals: dict[str, np.ndarray]
    degenerate: dict[str, np.ndarray]
    #: samples actually folded — the representatives' samples only
    n_folded: int
    representatives: Representatives
    #: measured error vs. the exact fold, when a harness computed one
    fidelity: FidelityBound | None = field(default=None)

    def digest(self) -> str:
        return fold_digest(self)

    def summary(self) -> str:
        reps = self.representatives
        parts = [
            f"Extrapolated fold over {self.instances.n} instances "
            f"of {self.instances.name!r}",
            f"  representatives folded: {reps.n_clusters} "
            f"(budget {reps.budget}, seed {reps.seed})",
            f"  mean instance duration: "
            f"{self.instances.mean_duration_ns / 1e6:.3f} ms",
            f"  samples folded: {self.n_folded}",
        ]
        if self.fidelity is not None:
            parts.append(f"  {self.fidelity.summary()}")
        return "\n".join(parts)

    def export_gnuplot(self, directory: str | Path) -> list[Path]:
        """Write the performance panel (``counters.dat``) only."""
        from repro.folding.report import export_counters_dat

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        return [export_counters_dat(self.counters, directory)]


def extrapolated_fold(
    trace: Trace,
    representatives: Representatives,
    *,
    grid_points: int = 201,
    bandwidth: float = 0.015,
    counters: tuple[str, ...] = SAMPLE_COUNTERS,
) -> ExtrapolatedFold:
    """Fold only *representatives*' samples, extrapolate by weight."""
    table = trace.sample_table()
    t = table.time_ns
    instances = representatives.instances
    starts = instances.starts_ns
    ends = instances.ends_ns

    # Exact O(instances) bookkeeping over ALL instances, shared
    # expressions with fold_samples.
    c_start: dict[str, np.ndarray] = {}
    denom: dict[str, np.ndarray] = {}
    totals: dict[str, np.ndarray] = {}
    degenerate: dict[str, np.ndarray] = {}
    for name in counters:
        series = table.column(name)
        cs = boundary_values(t, series, starts)
        ce = boundary_values(t, series, ends)
        totals[name], degenerate[name], denom[name] = boundary_increments(cs, ce)
        c_start[name] = cs

    sel = representatives.indices
    w = representatives.weights
    rows, local = instance_sample_rows(t, starts[sel], ends[sel])
    if rows.size == 0:
        raise ValueError("representative instances contain no samples")
    g = sel[local]  # global instance index of every kept sample
    sigma = (t[rows] - starts[g]) / (ends[g] - starts[g])
    Y = np.empty((len(counters), rows.size), dtype=np.float64)
    for i, name in enumerate(counters):
        value = table.column(name)[rows]
        frac = (value - c_start[name][g]) / denom[name][g]
        Y[i] = np.clip(frac, 0.0, 1.0)

    design = make_design(sigma, Y, weights=w[local])
    wsum = w.sum()
    fitted = fit_counter_curves(
        design,
        grid_points=grid_points,
        bandwidth=bandwidth,
        counters=tuple(counters),
        totals_mean={
            name: float((totals[name][sel] * w).sum() / wsum)
            for name in counters
        },
        duration_ns=float((instances.durations_ns[sel] * w).sum() / wsum),
    )
    return ExtrapolatedFold(
        instances=instances,
        counters=fitted,
        totals=totals,
        degenerate=degenerate,
        n_folded=int(rows.size),
        representatives=representatives,
    )


def exact_performance_fold(
    trace: Trace,
    *,
    instances: FoldInstances | None = None,
    grid_points: int = 201,
    bandwidth: float = 0.015,
    prune_tolerance: float | None = 0.5,
) -> StreamedFold:
    """The exact counters-only fold the extrapolation is measured against.

    Runs the resident :func:`~repro.folding.fold.fold_samples` +
    :func:`~repro.folding.model.fold_counters` path (skipping the
    address/line directions) and wraps the result in the
    counters-only shape :func:`~repro.folding.stream.fold_digest`
    understands.
    """
    if instances is None:
        instances = derive_instances(trace, None, prune_tolerance)
    folded = fold_samples(trace.sample_table(), instances)
    fitted = fold_counters(
        folded, grid_points=grid_points, bandwidth=bandwidth
    )
    return StreamedFold(
        instances=instances,
        counters=fitted,
        totals=dict(folded.totals),
        degenerate=dict(folded.degenerate),
        n_folded=folded.n,
    )


def measure_fidelity(
    trace: Trace,
    budget: int,
    *,
    seed: int = 0,
    grid_points: int = 201,
    bandwidth: float = 0.015,
    prune_tolerance: float | None = 0.5,
) -> tuple[ExtrapolatedFold, FidelityBound]:
    """Fold both ways and measure the extrapolation error.

    Returns the extrapolated fold (with its :class:`FidelityBound`
    attached) and the bound itself.  Intended for small digest-checked
    runs — on production-size traces, run the extrapolation alone and
    carry a bound measured on a scaled-down twin as metadata.
    """
    instances = derive_instances(trace, None, prune_tolerance)
    reps = select_representatives(
        trace, instances=instances, budget=budget, seed=seed
    )
    ext = extrapolated_fold(
        trace, reps, grid_points=grid_points, bandwidth=bandwidth
    )
    exact = exact_performance_fold(
        trace,
        instances=instances,
        grid_points=grid_points,
        bandwidth=bandwidth,
    )

    curve_error: dict[str, float] = {}
    rate_error: dict[str, float] = {}
    total_error: dict[str, float] = {}
    for name in exact.counters.curves:
        e = exact.counters[name]
        x = ext.counters[name]
        curve_error[name] = float(np.max(np.abs(x.cumulative - e.cumulative)))
        scale = float(np.max(np.abs(e.rate)))
        rate_error[name] = (
            float(np.max(np.abs(x.rate - e.rate))) / scale if scale > 0.0 else 0.0
        )
        total_error[name] = (
            abs(x.total_mean - e.total_mean) / abs(e.total_mean)
            if e.total_mean != 0.0
            else abs(x.total_mean)
        )

    bound = FidelityBound(
        budget=budget,
        n_instances=instances.n,
        seed=seed,
        curve_error=curve_error,
        rate_error=rate_error,
        total_error=total_error,
        exact_digest=exact.digest(),
        extrapolated_digest=ext.digest(),
    )
    ext.fidelity = bound
    return ext, bound
