"""Instance detection: which time intervals get folded together.

The folded region's instances come either from explicit iteration
markers (the instrumented CG loop) or from repeated occurrences of an
instrumented region.  Instances whose duration deviates strongly from
the median are pruned — perturbed instances (OS noise, first-touch
effects) would smear the folded curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.extrae.trace import Trace

__all__ = ["FoldInstances", "instances_from_iterations", "instances_from_regions"]


@dataclass(frozen=True)
class FoldInstances:
    """The instances to fold: ``intervals[i] = (t0, t1)`` in ns."""

    name: str
    intervals: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.intervals:
            raise ValueError(f"no instances to fold for {self.name!r}")
        for t0, t1 in self.intervals:
            if t1 <= t0:
                raise ValueError(f"empty instance [{t0}, {t1})")
        starts = [t0 for t0, _ in self.intervals]
        if sorted(starts) != starts:
            raise ValueError("instances must be sorted by start time")

    @property
    def n(self) -> int:
        return len(self.intervals)

    # The boundary arrays are consulted on every projection/counting
    # pass (fold_samples, count_in_instances, plans), so they are built
    # once per instance set instead of per call.  cached_property
    # writes straight into __dict__, which a frozen dataclass permits.
    @cached_property
    def starts_ns(self) -> np.ndarray:
        """Instance start times as a read-only array."""
        starts = np.array([t0 for t0, _ in self.intervals], dtype=np.float64)
        starts.setflags(write=False)
        return starts

    @cached_property
    def ends_ns(self) -> np.ndarray:
        """Instance end times as a read-only array."""
        ends = np.array([t1 for _, t1 in self.intervals], dtype=np.float64)
        ends.setflags(write=False)
        return ends

    @property
    def durations_ns(self) -> np.ndarray:
        return self.ends_ns - self.starts_ns

    @property
    def mean_duration_ns(self) -> float:
        return float(self.durations_ns.mean())

    def prune_outliers(self, tolerance: float = 0.25) -> "FoldInstances":
        """Drop instances whose duration deviates from the median by
        more than *tolerance* (relative)."""
        durations = self.durations_ns
        median = float(np.median(durations))
        keep = np.abs(durations - median) <= tolerance * median
        if not keep.any():
            raise ValueError("outlier pruning removed every instance")
        kept = tuple(iv for iv, k in zip(self.intervals, keep) if k)
        return FoldInstances(self.name, kept)


def instances_from_iterations(
    trace: Trace,
    name: str = "",
    end_marker: str = "execution_phase_end",
) -> FoldInstances:
    """Instances delimited by consecutive ITERATION markers.

    The last instance ends at *end_marker* (if present) or at the
    trace's end.
    """
    times = trace.iteration_times(name)
    if len(times) < 1:
        raise ValueError(f"trace has no iteration markers{f' named {name!r}' if name else ''}")
    end = trace.index().events.first_time_named(end_marker)
    if end is None:
        end = trace.duration_ns()
    edges = times + [end]
    intervals = tuple(
        (t0, t1) for t0, t1 in zip(edges, edges[1:]) if t1 > t0
    )
    return FoldInstances(name or "iteration", intervals)


def instances_from_regions(trace: Trace, region: str) -> FoldInstances:
    """Instances = the occurrences of an instrumented region.

    For recursive regions only the outermost occurrences are folded.
    """
    intervals = trace.region_intervals(region)
    if not intervals:
        raise ValueError(f"region {region!r} never occurs in the trace")
    outer: list[tuple[float, float]] = []
    for t0, t1 in sorted(intervals):
        if outer and t0 < outer[-1][1]:
            continue  # nested inside the previous outer occurrence
        outer.append((t0, t1))
    return FoldInstances(region, tuple(outer))
