"""Content-addressed on-disk cache for folded reports.

Folding the same trace with the same parameters always yields the same
report, so repeated CLI/:func:`~repro.pipeline.analyze_hpcg`
invocations over a saved trace can skip the whole fold: the cache keys
each report by the SHA-256 of (trace content digest, fold parameters,
fold-code version) and stores it as one pickle file.  Hits return in
milliseconds regardless of trace size.

The cache is strictly opt-in: nothing in :mod:`repro` touches it
unless a :class:`FoldCache` is passed to
:func:`~repro.folding.report.fold_trace` /
:func:`~repro.pipeline.analyze_hpcg`, or ``--cache`` is given to the
CLI.  The default location is ``~/.cache/repro/folding`` (override
with the ``REPRO_FOLD_CACHE_DIR`` environment variable or the
``directory`` argument).  Total size is bounded: after every store the
least-recently-used entries are evicted until the cache fits
``max_bytes``.  ``python -m repro.cli cache {info,clear,prune}``
inspects and manages it.

Pickled entries are an internal format (unlike ``.bsctrace`` files):
they are versioned by :data:`FOLD_CACHE_VERSION` — bump it whenever
folded output changes — and any unreadable entry is treated as a miss
and deleted.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.extrae.trace import Trace

__all__ = ["FOLD_CACHE_VERSION", "FoldCache"]

#: Version of the folded-report pipeline baked into every cache key.
#: Bump when folding output changes (new fit, changed clamps, new
#: report fields) so stale entries miss instead of resurfacing.
#: v2: keys carry a ``kind`` discriminator so extrapolated
#: (representative-instance) folds can never alias exact reports.
FOLD_CACHE_VERSION = 2

_ENV_DIR = "REPRO_FOLD_CACHE_DIR"
_SUFFIX = ".foldreport"


def _default_directory() -> Path:
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "folding"


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of the cache directory."""

    directory: Path
    n_entries: int
    total_bytes: int
    max_bytes: int

    def summary(self) -> str:
        mb = self.total_bytes / 1e6
        cap = self.max_bytes / 1e6
        return (
            f"fold cache at {self.directory}\n"
            f"  entries: {self.n_entries}\n"
            f"  size: {mb:.1f} MB of {cap:.0f} MB"
        )


class FoldCache:
    """Size-bounded, content-addressed store of folded reports.

    Two tiers: a small in-process memo (reports this process already
    stored or loaded — hits cost microseconds) over the on-disk pickle
    store (hits cost one read + unpickle, still milliseconds).  Both
    are addressed by the same content key, so a hit on either tier is
    bit-identical to refolding.

    Parameters
    ----------
    directory:
        Cache root (created on first store).  Default:
        ``$REPRO_FOLD_CACHE_DIR``, else ``~/.cache/repro/folding``.
    max_bytes:
        Total on-disk size bound; least-recently-used entries are
        evicted after each store until the cache fits.
    memo_entries:
        In-process memo capacity (reports kept alive in memory);
        ``0`` disables the memo tier.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        max_bytes: int = 1_000_000_000,
        memo_entries: int = 8,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if memo_entries < 0:
            raise ValueError(f"memo_entries must be >= 0, got {memo_entries}")
        self.directory = Path(directory) if directory else _default_directory()
        self.max_bytes = max_bytes
        self.memo_entries = memo_entries
        self._memo: OrderedDict[str, object] = OrderedDict()

    # -- keys ----------------------------------------------------------------
    def key(self, trace: Trace, *, kind: str = "report", **params) -> str:
        """Content address of (trace, fold kind, fold parameters).

        *kind* discriminates entry families that are **not**
        bit-identical to each other.  Exact resident and counters-only
        streamed folds share the default ``"report"`` (a streamed entry
        is a strict subset of the resident report, same bits where they
        overlap); extrapolated representative folds use
        ``"extrapolated"`` and multi-direction streamed reports use
        ``"streamed"`` — their address/line products are bounded
        summaries (reservoir, sketch, count matrices), so sharing a key
        with an exact entry would silently serve approximations to
        exact callers (and vice versa) whenever fit parameters
        coincide.
        """
        return self.key_digest(trace.digest(), kind=kind, **params)

    def key_digest(self, trace_digest: str, *, kind: str = "report", **params) -> str:
        """:meth:`key` from an already-known trace content digest.

        Identical to ``key(trace, ...)`` for a trace whose ``digest()``
        equals *trace_digest* — callers that know the digest without
        holding the trace (the analysis service resolves digests from
        the repository index) derive the same addresses as the fold
        workers that later populate the entry.
        """
        blob = json.dumps(
            {
                "cache_version": FOLD_CACHE_VERSION,
                "kind": kind,
                "trace": trace_digest,
                "params": {k: _canonical(v) for k, v in sorted(params.items())},
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}{_SUFFIX}"

    # -- store/fetch ---------------------------------------------------------
    def get(self, key: str):
        """The cached report for *key*, or ``None`` on a miss.

        The memo tier is consulted first; a disk hit refreshes the
        entry's mtime (LRU bookkeeping) and populates the memo.
        Entries that cannot be read or unpickled are deleted and
        reported as misses — the caller just refolds.  Every hit
        returns a fresh report wrapper (annotation bands copied), so
        annotating one returned report does not bleed into later hits.
        """
        memo = self._memo.get(key)
        if memo is not None:
            self._memo.move_to_end(key)
            return _rewrap(memo)
        path = self._path(key)
        try:
            with path.open("rb") as f:
                report = pickle.load(f)
        except FileNotFoundError:
            return None
        except Exception:
            path.unlink(missing_ok=True)
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        self._memoize(key, report)
        return _rewrap(report)

    def put(self, key: str, report) -> Path:
        """Store *report* under *key* (atomic), then enforce the bound.

        The pickle is staged to a private temp file and published with
        one ``os.replace`` — concurrent readers of the same key see
        either the previous complete entry or the new complete entry,
        never a torn pickle, and concurrent writers of the same key
        are last-writer-wins (both wrote identical bits: the key is a
        content address).  A writer dying inside the window leaves the
        published entry untouched; its staging file is swept by
        :meth:`prune`/:meth:`clear`.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(report, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        self._memoize(key, _rewrap(report))
        self.prune()
        return path

    def _memoize(self, key: str, report) -> None:
        if self.memo_entries <= 0:
            return
        self._memo[key] = report
        self._memo.move_to_end(key)
        while len(self._memo) > self.memo_entries:
            self._memo.popitem(last=False)

    # -- maintenance ---------------------------------------------------------
    def _entries(self) -> list[Path]:
        if not self.directory.is_dir():
            return []
        return [p for p in self.directory.iterdir() if p.suffix == _SUFFIX]

    def _stat_entries(self) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) per entry, skipping concurrently deleted ones.

        Several processes may share one cache directory (parallel fold
        workers, a serving process, a ``cache prune`` invocation); an
        entry listed a moment ago can be gone by the time it is
        stat'ed.  That is not an error — the entry simply no longer
        counts.
        """
        out = []
        for p in self._entries():
            try:
                st = p.stat()
            except OSError:
                continue
            out.append((st.st_mtime, st.st_size, p))
        return out

    def stats(self) -> CacheStats:
        entries = self._stat_entries()
        return CacheStats(
            directory=self.directory,
            n_entries=len(entries),
            total_bytes=sum(size for _, size, _ in entries),
            max_bytes=self.max_bytes,
        )

    def prune(self, max_bytes: int | None = None) -> int:
        """Evict least-recently-used entries past the size bound.

        Also sweeps staging files orphaned by a writer that died inside
        its crash window (after ``mkstemp``, before ``os.replace``) —
        they are invisible to readers but would otherwise accumulate.
        Returns the number of entries removed.
        """
        bound = self.max_bytes if max_bytes is None else max_bytes
        entries = sorted(self._stat_entries(), reverse=True)
        total = 0
        removed = 0
        for _, size, path in entries:
            total += size
            if total > bound:
                path.unlink(missing_ok=True)
                removed += 1
        self._sweep_stale_tmp()
        return removed

    def _sweep_stale_tmp(self, min_age_s: float = 3600.0) -> int:
        """Delete ``.tmp`` staging files older than *min_age_s*.

        The age guard keeps the sweep from racing a live writer that is
        mid-``pickle.dump``; an hour-old staging file belongs to a
        process that crashed in its write window.
        """
        if not self.directory.is_dir():
            return 0
        removed = 0
        now = time.time()
        for p in self.directory.iterdir():
            if p.suffix != ".tmp":
                continue
            try:
                if now - p.stat().st_mtime < min_age_s:
                    continue
            except OSError:
                continue
            p.unlink(missing_ok=True)
            removed += 1
        return removed

    def clear(self) -> int:
        """Delete every entry (both tiers); returns the number removed.

        Staging files left by crashed writers are swept too (regardless
        of age — clear means clear); they do not count as entries.
        """
        self._memo.clear()
        entries = self._entries()
        for path in entries:
            path.unlink(missing_ok=True)
        self._sweep_stale_tmp(min_age_s=0.0)
        return len(entries)


def _canonical(value):
    """JSON-stable form of a fold parameter."""
    if isinstance(value, tuple):
        return list(value)
    return value


def _rewrap(report):
    """A fresh report wrapper sharing *report*'s arrays.

    Callers may mutate the returned report's annotation bands
    (``report.addresses.annotate(...)``); re-wrapping on every memo
    store/hit keeps those mutations out of the memoized entry.
    Entries without an address view (the counters-only
    :class:`~repro.folding.stream.StreamedFold` shares this cache with
    full reports under identical keys) have nothing mutable to shield
    and pass through as-is.
    """
    from dataclasses import replace as _replace

    addresses = getattr(report, "addresses", None)
    if addresses is None:
        return report
    fresh = _replace(addresses, bands=list(addresses.bands))
    return _replace(report, addresses=fresh)
