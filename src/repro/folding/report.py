"""The combined three-direction folded report.

§II of the paper: "the tool provides a report where applications are
explored in three orthogonal directions: source code, memory accesses
and performance".  :func:`fold_trace` assembles all three from a trace
in one call; :class:`FoldedReport` carries them plus export helpers
that write gnuplot-style data files, as the original BSC Folding tool
does.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.extrae.trace import Trace
from repro.folding.address import FoldedAddresses, fold_addresses
from repro.folding.detect import FoldInstances, instances_from_iterations
from repro.folding.fold import FoldedSamples, fold_samples
from repro.folding.lines import FoldedLines, fold_lines
from repro.folding.model import FoldedCounters, fold_counters
from repro.memsim.datasource import DataSource
from repro.objects.registry import DataObjectRegistry

__all__ = ["FoldedReport", "fold_trace"]


@dataclass
class FoldedReport:
    """Source code × memory accesses × performance, folded."""

    trace: Trace
    instances: FoldInstances
    samples: FoldedSamples
    counters: FoldedCounters
    addresses: FoldedAddresses
    lines: FoldedLines
    registry: DataObjectRegistry

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable report header."""
        meta = self.trace.metadata
        parts = [
            f"Folded report over {self.instances.n} instances "
            f"of {self.instances.name!r}",
            f"  mean instance duration: {self.instances.mean_duration_ns / 1e6:.3f} ms",
            f"  samples folded: {self.samples.n}",
            f"  data objects: {len(self.registry)} "
            f"({self.addresses.matched_fraction() * 100:.1f}% of samples matched)",
            f"  workload: {meta.get('workload', '?')}",
        ]
        return "\n".join(parts)

    # ------------------------------------------------------------------
    def export_gnuplot(self, directory: str | Path) -> list[Path]:
        """Write the three panels as whitespace-separated data files.

        * ``codeline.dat`` — σ, line-id, file, line
        * ``addresses.dat`` — σ, address, op, source, latency, object
        * ``counters.dat`` — σ, MIPS, IPC, per-instruction rates
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []

        path = directory / "codeline.dat"
        with path.open("w") as f:
            f.write("# sigma line_id function file line\n")
            for i in range(self.lines.n):
                fn, file, line = self.lines.line_of(i)
                f.write(
                    f"{self.lines.sigma[i]:.6f} {int(self.lines.line_id[i])} "
                    f"{fn} {file} {line}\n"
                )
        written.append(path)

        path = directory / "addresses.dat"
        with path.open("w") as f:
            f.write("# sigma address op source latency object\n")
            a = self.addresses
            for i in range(a.n):
                obj = (
                    self.registry.records[int(a.object_index[i])].name
                    if a.object_index[i] >= 0
                    else "-"
                )
                f.write(
                    f"{a.sigma[i]:.6f} {int(a.address[i]):#x} {int(a.op[i])} "
                    f"{DataSource(int(a.source[i])).pretty} {a.latency[i]:.1f} {obj}\n"
                )
        written.append(path)

        path = directory / "counters.dat"
        c = self.counters
        mips = c.mips()
        ipc = c.ipc()
        rates = {
            name: c.per_instruction(name)
            for name in ("branches", "l1d_misses", "l2_misses", "l3_misses")
        }
        with path.open("w") as f:
            f.write("# sigma mips ipc " + " ".join(rates) + "\n")
            for i, s in enumerate(c.sigma):
                cols = " ".join(f"{rates[name][i]:.6f}" for name in rates)
                f.write(f"{s:.6f} {mips[i]:.1f} {ipc[i]:.4f} {cols}\n")
        written.append(path)

        path = directory / "objects.dat"
        with path.open("w") as f:
            f.write("# name kind start end bytes_user\n")
            for rec in self.registry.records:
                f.write(
                    f"{rec.name} {rec.kind} {rec.start:#x} {rec.end:#x} "
                    f"{rec.bytes_user}\n"
                )
            for band in self.addresses.bands:
                f.write(f"{band.label} band {band.lo:#x} {band.hi:#x} 0\n")
        written.append(path)
        return written


def fold_trace(
    trace: Trace,
    instances: FoldInstances | None = None,
    registry: DataObjectRegistry | None = None,
    grid_points: int = 201,
    bandwidth: float = 0.015,
    prune_tolerance: float | None = 0.5,
    align_regions: tuple[str, ...] | None = None,
) -> FoldedReport:
    """One-call folding of a trace into the three-direction report.

    Parameters
    ----------
    trace:
        A finalized trace with iteration markers (or pass explicit
        *instances*).
    instances:
        Fold boundaries; default: consecutive iteration markers.
    registry:
        Data objects; default: the trace's own object records.
    prune_tolerance:
        Relative duration tolerance for instance pruning (None
        disables pruning).
    align_regions:
        When given, project samples with a piecewise control-point
        warp built from these regions' enter events
        (:mod:`repro.folding.align`) instead of the linear per-instance
        projection — robust against intra-instance perturbation.
    """
    if instances is None:
        instances = instances_from_iterations(trace)
    if prune_tolerance is not None and instances.n >= 3:
        instances = instances.prune_outliers(prune_tolerance)
    if registry is None:
        registry = DataObjectRegistry(trace.objects)
    warp = None
    if align_regions is not None:
        from repro.folding.align import build_warp

        warp = build_warp(trace, instances, align_regions)
    folded = fold_samples(trace.sample_table(), instances, warp=warp)
    counters = fold_counters(folded, grid_points=grid_points, bandwidth=bandwidth)
    addresses = fold_addresses(folded, registry)
    lines = fold_lines(folded, trace)
    return FoldedReport(
        trace=trace,
        instances=instances,
        samples=folded,
        counters=counters,
        addresses=addresses,
        lines=lines,
        registry=registry,
    )
