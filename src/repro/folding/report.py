"""The combined three-direction folded report.

§II of the paper: "the tool provides a report where applications are
explored in three orthogonal directions: source code, memory accesses
and performance".  :func:`fold_trace` assembles all three from a trace
in one call; :class:`FoldedReport` carries them plus export helpers
that write gnuplot-style data files, as the original BSC Folding tool
does.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.extrae.trace import Trace
from repro.folding.address import FoldedAddresses
from repro.folding.detect import FoldInstances
from repro.folding.fold import FoldedSamples
from repro.folding.lines import FoldedLines
from repro.folding.model import FoldedCounters
from repro.memsim.datasource import DataSource
from repro.objects.registry import DataObjectRegistry

__all__ = ["FoldedReport", "export_counters_dat", "fold_trace"]


@dataclass
class FoldedReport:
    """Source code × memory accesses × performance, folded."""

    trace: Trace
    instances: FoldInstances
    samples: FoldedSamples
    counters: FoldedCounters
    addresses: FoldedAddresses
    lines: FoldedLines
    registry: DataObjectRegistry

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable report header."""
        meta = self.trace.metadata
        parts = [
            f"Folded report over {self.instances.n} instances "
            f"of {self.instances.name!r}",
            f"  mean instance duration: {self.instances.mean_duration_ns / 1e6:.3f} ms",
            f"  samples folded: {self.samples.n}",
            f"  data objects: {len(self.registry)} "
            f"({self.addresses.matched_fraction() * 100:.1f}% of samples matched)",
            f"  workload: {meta.get('workload', '?')}",
        ]
        return "\n".join(parts)

    # ------------------------------------------------------------------
    def export_gnuplot(self, directory: str | Path) -> list[Path]:
        """Write the three panels as whitespace-separated data files.

        * ``codeline.dat`` — σ, line-id, file, line
        * ``addresses.dat`` — σ, address, op, source, latency, object
        * ``counters.dat`` — σ, MIPS, IPC, per-instruction rates

        Rows are assembled column-wise: each column is formatted in one
        vectorized pass and the file written as a single join, instead
        of one ``f.write`` per row (``bench_fold.py`` tracks the delta).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []

        path = directory / "codeline.dat"
        li = self.lines
        ids = np.asarray(li.line_id, dtype=np.int64)
        table_cols = [
            np.array([str(t[j]) for t in li.line_table], dtype=object)
            for j in range(3)
        ]
        _write_columns(
            path,
            "# sigma line_id function file line",
            _fmt_float(li.sigma, 6),
            _fmt_int(li.line_id),
            *(col[ids].tolist() if li.n else [] for col in table_cols),
        )
        written.append(path)

        path = directory / "addresses.dat"
        a = self.addresses
        # Index -1 (unmatched) picks the trailing "-" sentinel.
        names = np.array(
            [rec.name for rec in self.registry.records] + ["-"], dtype=object
        )
        src_uniq, src_inv = np.unique(a.source, return_inverse=True)
        src_pretty = np.array(
            [DataSource(int(s)).pretty for s in src_uniq], dtype=object
        )
        _write_columns(
            path,
            "# sigma address op source latency object",
            _fmt_float(a.sigma, 6),
            _fmt_hex(a.address),
            _fmt_int(a.op),
            src_pretty[src_inv].tolist() if a.n else [],
            _fmt_float(a.latency, 1),
            names[a.object_index].tolist() if a.n else [],
        )
        written.append(path)

        written.append(export_counters_dat(self.counters, directory))

        path = directory / "objects.dat"
        rows = [
            f"{rec.name} {rec.kind} {rec.start:#x} {rec.end:#x} {rec.bytes_user}"
            for rec in self.registry.records
        ]
        rows += [
            f"{band.label} band {band.lo:#x} {band.hi:#x} 0"
            for band in self.addresses.bands
        ]
        path.write_text("\n".join(["# name kind start end bytes_user", *rows]) + "\n")
        written.append(path)
        return written


def export_counters_dat(counters: FoldedCounters, directory: str | Path) -> Path:
    """Write the performance panel (``counters.dat``) of *counters*.

    Shared by the resident report and the streamed fold
    (:class:`~repro.folding.stream.StreamedFold`), so both paths emit
    byte-identical files from identical curves.
    """
    directory = Path(directory)
    path = directory / "counters.dat"
    rates = {
        name: counters.per_instruction(name)
        for name in ("branches", "l1d_misses", "l2_misses", "l3_misses")
    }
    _write_columns(
        path,
        "# sigma mips ipc " + " ".join(rates),
        _fmt_float(counters.sigma, 6),
        _fmt_float(counters.mips(), 1),
        _fmt_float(counters.ipc(), 4),
        *(_fmt_float(rates[name], 6) for name in rates),
    )
    return path


def _fmt_float(values: np.ndarray, decimals: int) -> np.ndarray:
    """Format a float column in one vectorized pass."""
    return np.char.mod(f"%.{decimals}f", np.asarray(values, dtype=np.float64))


def _fmt_int(values: np.ndarray) -> list[str]:
    return [str(v) for v in np.asarray(values).astype(np.int64).tolist()]


def _fmt_hex(values: np.ndarray) -> list[str]:
    return [hex(v) for v in np.asarray(values).astype(np.int64).tolist()]


def _write_columns(path: Path, header: str, *columns) -> None:
    """Write ``header`` plus space-joined *columns* as one text blob."""
    rows = map(" ".join, zip(*columns))
    path.write_text("\n".join([header, *rows]) + "\n")


def fold_trace(
    trace: Trace,
    instances: FoldInstances | None = None,
    registry: DataObjectRegistry | None = None,
    grid_points: int = 201,
    bandwidth: float = 0.015,
    prune_tolerance: float | None = 0.5,
    align_regions: tuple[str, ...] | None = None,
    cache=None,
    streaming: bool = False,
    chunk_rows: int | None = None,
    directions=None,
    representatives=None,
    rep_budget: int | None = None,
    rep_seed: int = 0,
) -> FoldedReport:
    """One-call folding of a trace into the three-direction report.

    Equivalent to ``FoldPlan.from_trace(...).fold(...)`` — callers that
    fold the same trace at several parameter points should build the
    :class:`~repro.folding.plan.FoldPlan` themselves and reuse it.

    Parameters
    ----------
    trace:
        A finalized trace with iteration markers (or pass explicit
        *instances*).
    instances:
        Fold boundaries; default: consecutive iteration markers.
    registry:
        Data objects; default: the trace's own object records.
    prune_tolerance:
        Relative duration tolerance for instance pruning (None
        disables pruning).
    align_regions:
        When given, project samples with a piecewise control-point
        warp built from these regions' enter events
        (:mod:`repro.folding.align`) instead of the linear per-instance
        projection — robust against intra-instance perturbation.
    cache:
        Optional :class:`repro.folding.cache.FoldCache`.  When given,
        a report previously folded from a bit-identical trace at these
        exact parameters is returned from disk; otherwise the fresh
        report is stored before returning.  Only default *instances*
        and *registry* are cacheable (explicit ones bypass the cache).
    streaming:
        Fold chunk by chunk with O(chunk + summary) parent memory
        instead of materializing the sample table
        (:func:`repro.folding.stream.stream_fold_trace`).  By default
        returns the counters-only
        :class:`~repro.folding.stream.StreamedFold` — curves, totals
        and degenerate flags bit-identical to the resident report's;
        with *directions* the streamed address/line products ride
        along in a
        :class:`~repro.folding.stream_views.StreamedReport`.
        Incompatible with explicit *instances* and with
        *align_regions*.
    chunk_rows:
        Rows per streamed chunk (``streaming=True`` only).
    directions:
        Fold directions for the streamed report, e.g.
        ``("counters", "address", "lines")`` (``streaming=True``
        only); the resident fold always carries all three.
    representatives:
        Fold only representative instances and extrapolate.  Pass a
        prebuilt :class:`~repro.folding.reps.Representatives` selection,
        or ``True`` to select one here (*rep_budget* instances, seeded
        by *rep_seed*).  Returns a counters-only
        :class:`~repro.folding.extrapolate.ExtrapolatedFold` whose
        curves are weight-extrapolated from the representatives — exact
        per-instance totals/degenerate flags, approximate curve shape,
        bit-identical to the exact fold when the budget covers every
        instance.  Incompatible with *streaming*, *align_regions* and
        explicit *registry*.
    rep_budget:
        Representative budget; implies ``representatives=True``.
    rep_seed:
        Clustering seed for the representative selection (part of the
        cache key).
    """
    from repro.folding.plan import FoldPlan

    if rep_budget is not None and representatives is None:
        representatives = True
    if representatives is not None and representatives is not False:
        from repro.folding.extrapolate import extrapolated_fold
        from repro.folding.reps import Representatives, select_representatives

        if streaming:
            raise ValueError(
                "representative folds are already sub-linear in instances — "
                "combine with streaming is not supported"
            )
        if align_regions is not None or registry is not None:
            raise ValueError(
                "representative folds use the linear per-instance projection "
                "and carry no address view — align_regions/registry need the "
                "resident fold"
            )
        if isinstance(representatives, Representatives):
            reps = representatives
            cacheable = False  # the selection is not captured by the key
        else:
            if rep_budget is None:
                raise ValueError(
                    "representatives=True needs rep_budget (the number of "
                    "instances to fold)"
                )
            reps = select_representatives(
                trace,
                instances=instances,
                budget=rep_budget,
                seed=rep_seed,
                prune_tolerance=prune_tolerance,
            )
            cacheable = cache is not None and instances is None
        if cacheable:
            from repro.folding.extrapolate import ExtrapolatedFold

            key = cache.key(
                trace,
                kind="extrapolated",
                grid_points=grid_points,
                bandwidth=bandwidth,
                prune_tolerance=prune_tolerance,
                rep_budget=rep_budget,
                rep_seed=rep_seed,
            )
            hit = cache.get(key)
            if isinstance(hit, ExtrapolatedFold):
                return hit
        ext = extrapolated_fold(
            trace, reps, grid_points=grid_points, bandwidth=bandwidth
        )
        if cacheable:
            cache.put(key, ext)
        return ext

    if streaming:
        from repro.folding.stream import DEFAULT_CHUNK_ROWS, stream_fold_trace

        if instances is not None:
            raise ValueError(
                "streaming folds derive instances from the trace — explicit "
                "instances need the resident fold"
            )
        if registry is not None and (
            directions is None or "address" not in tuple(directions)
        ):
            raise ValueError(
                "an explicit registry only matters to the streamed address "
                "direction — pass directions including 'address', or use "
                "the resident fold"
            )
        if align_regions is not None:
            raise ValueError(
                "streaming folds use the linear per-instance projection — "
                "align_regions needs the resident fold"
            )
        return stream_fold_trace(
            trace,
            chunk_rows=chunk_rows if chunk_rows is not None else DEFAULT_CHUNK_ROWS,
            grid_points=grid_points,
            bandwidth=bandwidth,
            prune_tolerance=prune_tolerance,
            cache=cache,
            directions=directions,
            registry=registry,
        )
    if chunk_rows is not None:
        raise ValueError("chunk_rows only applies to streaming folds")
    if directions is not None:
        raise ValueError(
            "directions only applies to streaming folds — the resident "
            "report always carries all three"
        )

    cacheable = cache is not None and instances is None and registry is None
    if cacheable:
        key = cache.key(
            trace,
            grid_points=grid_points,
            bandwidth=bandwidth,
            prune_tolerance=prune_tolerance,
            align_regions=align_regions,
        )
        hit = cache.get(key)
        # A counters-only streamed entry can share this key; the
        # resident path cannot serve a full report from it, so treat it
        # as a miss (the fresh full report then overwrites the entry).
        if isinstance(hit, FoldedReport):
            # Entries are stored without the (large) input trace; the
            # caller's live trace is bit-identical by key construction.
            hit.trace = trace
            return hit
    plan = FoldPlan.from_trace(
        trace,
        instances=instances,
        registry=registry,
        prune_tolerance=prune_tolerance,
        align_regions=align_regions,
    )
    report = plan.fold(grid_points=grid_points, bandwidth=bandwidth)
    if cacheable:
        cache.put(key, replace(report, trace=None))
    return report
