"""Piecewise (control-point) alignment for folding.

Linear projection maps each instance's time range onto [0, 1] with one
scale factor.  If an instance is perturbed *inside* one phase (an OS
hiccup during the SPMV, say), everything after the perturbation shifts:
phase boundaries stop lining up across instances and the folded curves
smear even though the work per phase is identical.

The fix — used by folding-style tools when instances vary internally —
is a *piecewise* projection: choose control events that occur in every
instance (here: the enter times of instrumented regions), map each
instance's control times onto the average normalized control positions,
and interpolate linearly between them.  Every instance's phases then
land at the same σ regardless of where time was lost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.extrae.events import EventKind
from repro.extrae.trace import Trace
from repro.folding.detect import FoldInstances

__all__ = ["TimeWarp", "build_warp"]

_DEFAULT_REGIONS = ("ComputeSYMGS_ref", "ComputeSPMV_ref", "ComputeMG_ref")


@dataclass
class TimeWarp:
    """A per-instance piecewise-linear time → σ mapping.

    ``breaks_t[i]`` are instance *i*'s control times (including its
    start and end); ``breaks_sigma`` are the shared reference positions
    every instance's controls map onto.
    """

    breaks_t: list[np.ndarray]
    breaks_sigma: np.ndarray

    def __post_init__(self) -> None:
        k = self.breaks_sigma.size
        if k < 2:
            raise ValueError("a warp needs at least start and end controls")
        for i, bt in enumerate(self.breaks_t):
            if bt.size != k:
                raise ValueError(
                    f"instance {i} has {bt.size} controls, expected {k}"
                )
            if (np.diff(bt) < 0).any():
                raise ValueError(f"instance {i} has unsorted control times")
        if (np.diff(self.breaks_sigma) < 0).any():
            raise ValueError("reference positions must be sorted")

    @property
    def n_instances(self) -> int:
        return len(self.breaks_t)

    def sigma(self, instance: int, times_ns: np.ndarray) -> np.ndarray:
        """Map times of one instance onto the aligned σ axis."""
        return np.interp(times_ns, self.breaks_t[instance], self.breaks_sigma)


def build_warp(
    trace: Trace,
    instances: FoldInstances,
    regions: tuple[str, ...] = _DEFAULT_REGIONS,
) -> TimeWarp:
    """Build a piecewise warp from region-enter control events.

    Every instance must contain the same number of control events (the
    iteration structure is identical by construction); a mismatch
    raises, pointing at the offending instance.

    Parameters
    ----------
    trace:
        The trace whose region events provide the controls.
    instances:
        The fold instances (typically already outlier-pruned).
    regions:
        Region names whose ENTER events serve as control points.
    """
    region_set = set(regions)
    enters = [
        ev.time_ns
        for ev in trace.events
        if ev.kind == EventKind.REGION_ENTER and ev.name in region_set
    ]
    enters_arr = np.asarray(enters, dtype=np.float64)

    controls: list[np.ndarray] = []
    for i, (t0, t1) in enumerate(instances.intervals):
        inside = enters_arr[(enters_arr >= t0) & (enters_arr < t1)]
        controls.append(
            np.concatenate([[t0], np.sort(inside), [t1]])
        )
    counts = {c.size for c in controls}
    if len(counts) != 1:
        detail = ", ".join(str(c.size - 2) for c in controls)
        raise ValueError(
            f"instances disagree on control-event counts ({detail}); "
            f"choose regions that occur identically in every instance"
        )

    # Reference positions: the mean normalized position of each control.
    norm = np.stack(
        [
            (c - t0) / (t1 - t0)
            for c, (t0, t1) in zip(controls, instances.intervals)
        ]
    )
    reference = norm.mean(axis=0)
    reference[0], reference[-1] = 0.0, 1.0
    # Guard against degenerate (coincident) controls.
    reference = np.maximum.accumulate(reference)
    return TimeWarp(breaks_t=controls, breaks_sigma=reference)
