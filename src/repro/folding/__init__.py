"""The Folding mechanism.

Folding (Servat et al., ICPP 2011, extended by this paper) projects the
sparse samples collected across *many instances* of a repetitive region
onto a single normalized time axis, recovering detailed intra-region
evolution from coarse-grained sampling:

* :mod:`repro.folding.detect` — delimit the instances (iteration
  markers or region occurrences), pruning outlier instances;
* :mod:`repro.folding.fold` — project each sample to its instance-
  relative normalized time σ ∈ [0, 1] and normalized cumulative
  counter fractions;
* :mod:`repro.folding.model` — fit smooth *monotone* cumulative curves
  per hardware counter (Gaussian kernel regression + PAVA) and
  differentiate them into instantaneous rates: MIPS, counter-per-
  instruction, IPC;
* :mod:`repro.folding.address` — the folded address-space view (this
  paper's extension): sampled addresses vs σ with op, data source,
  latency and resolved data object;
* :mod:`repro.folding.lines` — the folded source-code view: the code
  line executing at each σ;
* :mod:`repro.folding.report` — the combined three-direction report
  (source code × memory × performance), with gnuplot-style exports;
* :mod:`repro.folding.plan` — :class:`FoldPlan`, the reusable
  trace-dependent half of a fold (sweeps fit many parameter points
  against one plan);
* :mod:`repro.folding.cache` — the opt-in content-addressed on-disk
  report cache keyed by (trace digest, fold parameters);
* :mod:`repro.folding.stream` — bounded-memory chunkwise folding: the
  exact two-pass :func:`stream_fold_trace` (counter curves
  bit-identical to the resident fold) and the single-pass live
  :class:`LiveFold`, both able to carry the streamed address/line
  directions;
* :mod:`repro.folding.stream_views` — the bounded per-direction
  summaries behind the streamed :class:`StreamedReport`: exact
  additive address accounting, deterministic reservoir + density
  sketch over the scatter, and (line × σ-bin) count matrices;
* :mod:`repro.folding.signatures` / :mod:`repro.folding.reps` /
  :mod:`repro.folding.extrapolate` — representative-instance sampling:
  per-instance access-pattern signatures, seeded medoid clustering
  (:func:`select_representatives`), and the weight-extrapolated fold
  with a measured fidelity bound (:func:`measure_fidelity`).
"""

from repro.folding.address import FoldedAddresses, fold_addresses
from repro.folding.align import TimeWarp, build_warp
from repro.folding.ascii_plot import render_figure
from repro.folding.cache import FoldCache
from repro.folding.detect import FoldInstances, instances_from_iterations, instances_from_regions
from repro.folding.extrapolate import (
    ExtrapolatedFold,
    FidelityBound,
    extrapolated_fold,
    measure_fidelity,
)
from repro.folding.fold import FoldedSamples, fold_samples
from repro.folding.lines import FoldedLines, fold_lines
from repro.folding.model import (
    FoldedCounters,
    FoldedCurve,
    fit_counter_curves,
    fold_counters,
    merge_counters,
)
from repro.folding.plan import FoldPlan
from repro.folding.report import FoldedReport, fold_trace
from repro.folding.reps import Representatives, select_representatives
from repro.folding.signatures import InstanceSignatures, instance_signatures
from repro.folding.stream import (
    LiveFold,
    StreamedFold,
    StreamingFold,
    fold_digest,
    stream_fold_trace,
)
from repro.folding.stream_views import (
    StreamedAddresses,
    StreamedLines,
    StreamedReport,
    measure_address_fidelity,
)

__all__ = [
    "ExtrapolatedFold",
    "FidelityBound",
    "FoldCache",
    "FoldInstances",
    "FoldPlan",
    "InstanceSignatures",
    "LiveFold",
    "Representatives",
    "StreamedAddresses",
    "StreamedFold",
    "StreamedLines",
    "StreamedReport",
    "StreamingFold",
    "TimeWarp",
    "FoldedAddresses",
    "FoldedCounters",
    "FoldedCurve",
    "FoldedLines",
    "FoldedReport",
    "FoldedSamples",
    "extrapolated_fold",
    "fit_counter_curves",
    "fold_addresses",
    "fold_counters",
    "fold_digest",
    "fold_lines",
    "fold_samples",
    "fold_trace",
    "instance_signatures",
    "measure_address_fidelity",
    "measure_fidelity",
    "merge_counters",
    "build_warp",
    "render_figure",
    "instances_from_iterations",
    "instances_from_regions",
    "select_representatives",
    "stream_fold_trace",
]
