"""Fold plans: reuse the trace-dependent folding work across fits.

Folding a trace splits into two very different halves:

* **trace-dependent** — detect and prune instances, compute each
  sample's inside-mask and σ projection (optionally warped), interpolate
  counter boundaries, resolve addresses, extract the source-line track.
  This scales with the trace and is identical for every fit.
* **parameter-dependent** — the kernel regression over (grid ×
  samples) at one ``grid_points``/``bandwidth``/counter subset.

:class:`FoldPlan` captures the first half once.  Sweeps that vary only
fit parameters (the kernel ablation, bandwidth/grid scans,
:func:`repro.parallel.fold_sweep`) call :meth:`FoldPlan.fold` per point
instead of re-running :func:`~repro.folding.report.fold_trace` from
scratch — bit-identical output, because ``fold_trace`` itself is just
``FoldPlan.from_trace(...).fold(...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.extrae.trace import Trace
from repro.folding.address import FoldedAddresses, fold_addresses
from repro.folding.detect import FoldInstances, instances_from_iterations
from repro.folding.fold import FoldedSamples, fold_samples
from repro.folding.lines import FoldedLines, fold_lines
from repro.folding.model import FoldedCounters, counter_design, fold_counters
from repro.objects.registry import DataObjectRegistry
from repro.simproc.machine import SAMPLE_COUNTERS
from repro.util.pava import BinnedDesign

__all__ = ["FoldPlan"]


@dataclass
class FoldPlan:
    """The reusable trace-dependent half of a fold.

    Build once with :meth:`from_trace`, then :meth:`fold` any number of
    parameter points against it.  Kernel-regression designs are cached
    per counter subset, so even the sample-side aggregation of the
    batched fit is shared across a bandwidth/grid sweep.
    """

    trace: Trace
    instances: FoldInstances
    samples: FoldedSamples
    addresses: FoldedAddresses
    lines: FoldedLines
    registry: DataObjectRegistry
    _designs: dict[tuple[str, ...], BinnedDesign] = field(
        default_factory=dict, repr=False
    )

    # ------------------------------------------------------------------
    @classmethod
    def from_trace(
        cls,
        trace: Trace,
        instances: FoldInstances | None = None,
        registry: DataObjectRegistry | None = None,
        prune_tolerance: float | None = 0.5,
        align_regions: tuple[str, ...] | None = None,
    ) -> "FoldPlan":
        """Run the expensive trace-dependent folding work once.

        Parameters mirror :func:`repro.folding.report.fold_trace` —
        everything *except* the fit parameters, which stay free.
        """
        if instances is None:
            instances = instances_from_iterations(trace)
        if prune_tolerance is not None and instances.n >= 3:
            instances = instances.prune_outliers(prune_tolerance)
        if registry is None:
            registry = DataObjectRegistry(trace.objects)
        warp = None
        if align_regions is not None:
            from repro.folding.align import build_warp

            warp = build_warp(trace, instances, align_regions)
        samples = fold_samples(trace.sample_table(), instances, warp=warp)
        return cls(
            trace=trace,
            instances=instances,
            samples=samples,
            addresses=fold_addresses(samples, registry),
            lines=fold_lines(samples, trace),
            registry=registry,
        )

    # ------------------------------------------------------------------
    def design_for(self, counters: tuple[str, ...] = SAMPLE_COUNTERS) -> BinnedDesign:
        """The cached kernel-regression design of a counter subset."""
        key = tuple(counters)
        design = self._designs.get(key)
        if design is None:
            design = counter_design(self.samples, key)
            self._designs[key] = design
        return design

    def fold_counters(
        self,
        grid_points: int = 201,
        bandwidth: float = 0.015,
        counters: tuple[str, ...] = SAMPLE_COUNTERS,
    ) -> FoldedCounters:
        """Fit one parameter point against the cached design."""
        return fold_counters(
            self.samples,
            grid_points=grid_points,
            bandwidth=bandwidth,
            counters=tuple(counters),
            design=self.design_for(tuple(counters)),
        )

    def fold(
        self,
        grid_points: int = 201,
        bandwidth: float = 0.015,
        counters: tuple[str, ...] = SAMPLE_COUNTERS,
    ):
        """Assemble the full three-direction report at one fit point.

        Everything but the counter fit is shared with the plan; the
        address view is re-wrapped (arrays shared, annotation bands
        fresh) so annotating one report does not leak into the next.
        """
        from repro.folding.report import FoldedReport

        addresses = FoldedAddresses(
            sigma=self.addresses.sigma,
            address=self.addresses.address,
            op=self.addresses.op,
            source=self.addresses.source,
            latency=self.addresses.latency,
            object_index=self.addresses.object_index,
            registry=self.addresses.registry,
            bands=list(self.addresses.bands),
        )
        return FoldedReport(
            trace=self.trace,
            instances=self.instances,
            samples=self.samples,
            counters=self.fold_counters(grid_points, bandwidth, counters),
            addresses=addresses,
            lines=self.lines,
            registry=self.registry,
        )
