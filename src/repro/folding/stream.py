"""Streaming folds: bounded-memory chunkwise folding of huge traces.

``fold_trace`` holds the consolidated sample table (and the per-sample
folded views derived from it) resident — O(trace) parent memory, which
caps foldable workload sizes well below what the v2 container can
*store*.  This module folds the **performance direction** of the report
chunk by chunk instead, with O(chunk) parent memory, so trace size
becomes disk-bound rather than RAM-bound.

Why the result can be bit-identical to the resident fold
--------------------------------------------------------

The batched counter fit factors through a
:class:`~repro.util.pava.BinnedDesign` whose binned form is built from
per-bin sums Σw and Σw·y — *additive* over samples.  Three details make
the chunkwise accumulation reproduce the resident sums to the last bit:

* **Bin edges** depend only on the σ span of the kept samples
  (:func:`~repro.util.pava.design_bin_edges`), and whether the design
  bins at all depends only on the kept-sample *count* — both are scalar
  reductions a cheap prologue pass computes exactly (min/max/count are
  order-independent).
* **Σw·y order.**  Float addition is not associative, so summing
  per-chunk ``bincount`` partials would drift.  Instead every chunk is
  accumulated with ``np.add.at``, which adds element-by-element in
  array order — concatenated over chunks this is the *same sequence of
  additions per bin* as one ``bincount`` over the resident array, hence
  the same bits.  Σw needs no such care: the fold's weights are all
  ones, and integer-valued float sums are exact.
* **Boundary interpolation.**  Per-instance counter totals come from
  ``np.interp`` at instance boundaries.  ``np.interp`` at a point *b*
  only reads the bracketing pair (the rightmost sample at or before
  *b* and its successor), so the prologue resolves each boundary from
  a two-chunk window — the previous chunk's last row plus the current
  chunk — the first time the stream passes it, reproducing the
  whole-trace interpolation exactly (and independently of the chunk
  size).  The shared clamp
  (:func:`~repro.folding.fold.boundary_increments`) then guarantees
  identical ``totals``/``degenerate`` flags.

The final :func:`~repro.util.pava.fit_design` runs on the accumulated
design through the same :func:`~repro.folding.model.fit_counter_curves`
path as the resident fold — digest-identical output, checked by the
chunk-invariance property tests and the ``bench_streamfold`` tripwire.

Two drivers sit on top of the :class:`StreamingFold` accumulator:

* :func:`stream_fold_trace` — the exact two-pass fold of a finished
  trace (pass 1: instance boundaries from the event sidecar + scalar
  prologue reductions; pass 2: accumulate), sharing
  :class:`~repro.folding.cache.FoldCache` entries with resident folds
  under unchanged keys;
* :class:`LiveFold` — a single-pass monitoring-style fold over a live
  sample stream whose instance boundaries arrive *with* the data, and
  which emits partial :class:`~repro.folding.model.FoldedCounters`
  snapshots on demand.  It cannot know the final σ span or kept count
  up front, so it always bins on the fixed [0, 1] span — deterministic
  and chunk-invariant, but a documented approximation of the resident
  fit (the bin width, 1/4096, is at most bandwidth/8 for every
  bandwidth the ablations use).

The streamed product is no longer counters-only: with
``directions=("counters", "address", "lines")`` the driver also feeds
the bounded per-direction accumulators of
:mod:`repro.folding.stream_views` — an exact additive address
accounting plus a deterministic reservoir and density sketch for the
scatter, and fixed (line × σ-bin) count matrices for the source-line
track — and returns a three-direction
:class:`~repro.folding.stream_views.StreamedReport` in
O(chunk + summary) parent memory.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.extrae.trace import Trace
from repro.folding.detect import FoldInstances, instances_from_iterations
from repro.folding.fold import _inside_mask, boundary_increments
from repro.folding.model import FoldedCounters, fit_counter_curves
from repro.folding.stream_views import (
    LINE_SIGMA_BINS,
    RESERVOIR_CAPACITY,
    AddressStream,
    LineStream,
    StreamedReport,
)
from repro.objects.registry import DataObjectRegistry
from repro.simproc.machine import SAMPLE_COUNTERS
from repro.util.pava import (
    BIN_THRESHOLD,
    DESIGN_BINS,
    BinnedDesign,
    assign_design_bins,
    binned_design_from_sums,
    design_bin_edges,
)

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "LiveFold",
    "StreamPrologue",
    "StreamedFold",
    "StreamedReport",
    "StreamingFold",
    "build_prologue",
    "fold_digest",
    "stream_fold_trace",
]

#: Default chunk size, re-exported from the container reader.
from repro.extrae.storage import DEFAULT_CHUNK_ROWS  # noqa: E402


def _chunk_columns(chunk, names: tuple[str, ...]) -> dict[str, np.ndarray]:
    """Column arrays of a chunk (a mapping or a ``SampleTable``)."""
    getter = chunk.column if hasattr(chunk, "column") else chunk.__getitem__
    return {
        name: np.asarray(getter(name), dtype=np.float64) for name in names
    }


# ---------------------------------------------------------------------------
# Pass 1: the prologue — everything the accumulator must know up front.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StreamPrologue:
    """What one cheap streaming pass learns about a trace.

    Holds the per-instance boundary readings (and the
    totals/degenerate/denominator vectors derived from them), the kept
    sample count, and the σ span — the only whole-trace facts the
    chunkwise design accumulation needs.  Everything here is O(number
    of instances), never O(samples).
    """

    instances: FoldInstances
    counters: tuple[str, ...]
    #: rows streamed (kept or not)
    n_rows: int
    #: rows inside any instance — the design's sample count
    n_kept: int
    #: (σ min, σ max) over kept samples; ``None`` when nothing is kept
    span: tuple[float, float] | None
    #: whether the design pre-aggregates onto the fixed binning
    binned: bool
    c_start: dict[str, np.ndarray]
    c_end: dict[str, np.ndarray]
    totals: dict[str, np.ndarray]
    degenerate: dict[str, np.ndarray]
    denom: dict[str, np.ndarray]
    #: (min, max) address over kept samples — only when the pass was
    #: asked to track it (the streamed address direction's sketch span)
    addr_range: tuple[int, int] | None = None


def build_prologue(
    chunks,
    instances: FoldInstances,
    counters: tuple[str, ...] = SAMPLE_COUNTERS,
    *,
    span_override: tuple[float, float] | None = None,
    force_binned: bool = False,
    track_address: bool = False,
) -> StreamPrologue:
    """Stream *chunks* once, resolving boundaries and scalar reductions.

    *chunks* yields time-ordered column mappings carrying ``time_ns``
    plus every counter in *counters*.  Each instance boundary is
    interpolated from a window of the previous chunk's last row plus
    the current chunk, the first time the stream strictly passes it —
    bit-identical to ``np.interp`` over the whole series, whatever the
    chunking (see the module docstring).

    ``span_override``/``force_binned`` pin the design regime instead of
    deriving it from the data — :class:`LiveFold` equivalence tests use
    them; exact folds leave them alone.  With ``track_address`` the
    chunks must also carry an ``address`` column, and the kept-sample
    address min/max (the density-sketch span, another exact scalar
    reduction) is recorded in :attr:`StreamPrologue.addr_range`.
    """
    starts = instances.starts_ns
    ends = instances.ends_ns
    n_inst = instances.n
    bounds = np.concatenate([starts, ends])
    bvals = {name: np.zeros(bounds.size, dtype=np.float64) for name in counters}
    pending = np.ones(bounds.size, dtype=bool)
    prev_t: np.ndarray | None = None
    prev_v: dict[str, np.ndarray] = {}
    n_rows = 0
    n_kept = 0
    smin, smax = math.inf, -math.inf
    amin, amax = None, None

    for chunk in chunks:
        cols = _chunk_columns(chunk, ("time_ns", *counters))
        t = cols["time_ns"]
        if t.size == 0:
            continue
        if (np.diff(t) < 0.0).any() or (
            prev_t is not None and t[0] < prev_t[0]
        ):
            raise ValueError("sample chunks must arrive in time order")
        idx, inside = _inside_mask(t, starts, ends)
        k = int(np.count_nonzero(inside))
        if k:
            ik = idx[inside]
            sigma = (t[inside] - starts[ik]) / (ends[ik] - starts[ik])
            smin = min(smin, float(sigma.min()))
            smax = max(smax, float(sigma.max()))
            n_kept += k
            if track_address:
                getter = (
                    chunk.column
                    if hasattr(chunk, "column")
                    else chunk.__getitem__
                )
                kept = np.asarray(getter("address"))[inside]
                lo, hi = int(kept.min()), int(kept.max())
                amin = lo if amin is None else min(amin, lo)
                amax = hi if amax is None else max(amax, hi)
        resolve = pending & (bounds < t[-1])
        if resolve.any():
            if prev_t is None:
                tw = t
                windows = {name: cols[name] for name in counters}
            else:
                tw = np.concatenate([prev_t, t])
                windows = {
                    name: np.concatenate([prev_v[name], cols[name]])
                    for name in counters
                }
            at = bounds[resolve]
            for name in counters:
                bvals[name][resolve] = np.interp(at, tw, windows[name])
            pending &= ~resolve
        prev_t = t[-1:].copy()
        prev_v = {name: cols[name][-1:].copy() for name in counters}
        n_rows += int(t.size)

    if pending.any() and prev_t is not None:
        # Boundaries at or past the last sample read the last value,
        # exactly as whole-series np.interp extrapolates on the right.
        for name in counters:
            bvals[name][pending] = prev_v[name][0]
    # (With zero rows every boundary stays 0.0 — matching fold_samples.)

    c_start: dict[str, np.ndarray] = {}
    c_end: dict[str, np.ndarray] = {}
    totals: dict[str, np.ndarray] = {}
    degenerate: dict[str, np.ndarray] = {}
    denom: dict[str, np.ndarray] = {}
    for name in counters:
        c_start[name] = bvals[name][:n_inst].copy()
        c_end[name] = bvals[name][n_inst:].copy()
        totals[name], degenerate[name], denom[name] = boundary_increments(
            c_start[name], c_end[name]
        )

    if span_override is not None:
        span = (float(span_override[0]), float(span_override[1]))
    else:
        span = (smin, smax) if n_kept else None
    return StreamPrologue(
        instances=instances,
        counters=tuple(counters),
        n_rows=n_rows,
        n_kept=n_kept,
        span=span,
        binned=force_binned or n_kept > BIN_THRESHOLD,
        c_start=c_start,
        c_end=c_end,
        totals=totals,
        degenerate=degenerate,
        denom=denom,
        addr_range=(amin, amax) if amin is not None else None,
    )


# ---------------------------------------------------------------------------
# Pass 2: the accumulator.
# ---------------------------------------------------------------------------


class StreamingFold:
    """Chunkwise design accumulator for the exact streaming fold.

    Feed time-ordered sample chunks through :meth:`add_chunk`; the
    design sums grow in place (O(bins) memory, plus O(kept) only in the
    small-trace raw regime where the resident fit would not bin
    either).  :meth:`result` fits the accumulated design — bit-identical
    to the resident ``fold_trace`` counters when the prologue described
    the same stream.  :meth:`snapshot` fits the partial design at any
    point for progress-style reporting.
    """

    def __init__(
        self,
        prologue: StreamPrologue,
        grid_points: int = 201,
        bandwidth: float = 0.015,
    ) -> None:
        if prologue.n_kept == 0:
            raise ValueError("cannot fold counters without samples")
        self.prologue = prologue
        self.grid_points = grid_points
        self.bandwidth = bandwidth
        k = len(prologue.counters)
        if prologue.binned:
            self._edges = design_bin_edges(*prologue.span)
            self._acc_w = np.zeros(DESIGN_BINS, dtype=np.float64)
            self._acc_wy = np.zeros((k, DESIGN_BINS), dtype=np.float64)
            self._sigma_parts = self._frac_parts = None
        else:
            self._edges = self._acc_w = self._acc_wy = None
            self._sigma_parts: list[np.ndarray] = []
            self._frac_parts: list[list[np.ndarray]] = [[] for _ in range(k)]
        self._last_t: float | None = None
        self.n_folded = 0
        self.n_chunks = 0

    def add_chunk(self, chunk) -> int:
        """Fold one time-ordered chunk in; returns its kept-row count."""
        p = self.prologue
        cols = _chunk_columns(chunk, ("time_ns", *p.counters))
        t = cols["time_ns"]
        self.n_chunks += 1
        if t.size == 0:
            return 0
        if self._last_t is not None and t[0] < self._last_t:
            raise ValueError("sample chunks must arrive in time order")
        self._last_t = float(t[-1])
        starts, ends = p.instances.starts_ns, p.instances.ends_ns
        idx, inside = _inside_mask(t, starts, ends)
        k = int(np.count_nonzero(inside))
        if k == 0:
            return 0
        ik = idx[inside]
        sigma = (t[inside] - starts[ik]) / (ends[ik] - starts[ik])
        which = (
            assign_design_bins(sigma, self._edges) if p.binned else None
        )
        for row, name in enumerate(p.counters):
            value = cols[name][inside]
            frac = np.clip(
                (value - p.c_start[name][ik]) / p.denom[name][ik], 0.0, 1.0
            )
            if p.binned:
                # np.add.at adds in element order, so chunk after chunk
                # this replays the exact addition sequence one bincount
                # over the resident array would perform per bin.
                np.add.at(self._acc_wy[row], which, frac)
            else:
                self._frac_parts[row].append(frac)
        if p.binned:
            self._acc_w += np.bincount(which, minlength=DESIGN_BINS)
        else:
            self._sigma_parts.append(sigma)
        self.n_folded += k
        return k

    # -- outputs -----------------------------------------------------------
    def design(self) -> BinnedDesign:
        """The design accumulated so far."""
        if self.n_folded == 0:
            raise ValueError("cannot fold counters without samples")
        if self.prologue.binned:
            return binned_design_from_sums(
                self._edges, self._acc_w, self._acc_wy
            )
        x = np.concatenate(self._sigma_parts)
        Y = np.stack([np.concatenate(parts) for parts in self._frac_parts])
        return BinnedDesign(x=x, w=np.ones_like(x), Y=Y)

    def _fit(self) -> FoldedCounters:
        p = self.prologue
        return fit_counter_curves(
            self.design(),
            grid_points=self.grid_points,
            bandwidth=self.bandwidth,
            counters=p.counters,
            totals_mean={
                name: float(p.totals[name].mean()) for name in p.counters
            },
            duration_ns=p.instances.mean_duration_ns,
        )

    def snapshot(self) -> FoldedCounters:
        """Partial curves over the chunks folded so far."""
        return self._fit()

    def result(self, chunk_rows: int = 0) -> "StreamedFold":
        """Finalize after the full stream has been folded in."""
        p = self.prologue
        if self.n_folded != p.n_kept:
            raise ValueError(
                f"stream folded {self.n_folded} kept samples, prologue saw "
                f"{p.n_kept} — passes must consume the same chunks"
            )
        return StreamedFold(
            instances=p.instances,
            counters=self._fit(),
            totals=dict(p.totals),
            degenerate=dict(p.degenerate),
            n_folded=self.n_folded,
            n_chunks=self.n_chunks,
            chunk_rows=int(chunk_rows),
        )


# ---------------------------------------------------------------------------
# The streamed product.
# ---------------------------------------------------------------------------


@dataclass
class StreamedFold:
    """The counters-only fold a streaming pass produces.

    Carries exactly what the resident
    :class:`~repro.folding.report.FoldedReport` knows about the
    performance direction — fitted curves, per-instance totals and
    degenerate flags, instance set — without the O(trace) sample views.
    :func:`fold_digest` compares the two shapes directly.
    """

    instances: FoldInstances
    counters: FoldedCounters
    totals: dict[str, np.ndarray]
    degenerate: dict[str, np.ndarray]
    #: samples that fell inside an instance and entered the design
    n_folded: int
    #: chunks consumed by the accumulation pass (0 for cache adaptions)
    n_chunks: int = 0
    #: row-chunk size of the accumulation pass (0 when not applicable)
    chunk_rows: int = 0

    def digest(self) -> str:
        return fold_digest(self)

    def summary(self) -> str:
        parts = [
            f"Streamed fold over {self.instances.n} instances "
            f"of {self.instances.name!r}",
            f"  mean instance duration: "
            f"{self.instances.mean_duration_ns / 1e6:.3f} ms",
            f"  samples folded: {self.n_folded}",
        ]
        if self.n_chunks:
            parts.append(
                f"  streamed in {self.n_chunks} chunks of "
                f"{self.chunk_rows} rows"
            )
        return "\n".join(parts)

    def export_gnuplot(self, directory: str | Path) -> list[Path]:
        """Write the performance panel (``counters.dat``) only."""
        from repro.folding.report import export_counters_dat

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        return [export_counters_dat(self.counters, directory)]


def fold_digest(fold) -> str:
    """Content digest of a fold's performance direction (hex SHA-256).

    Accepts a :class:`StreamedFold` or a resident
    :class:`~repro.folding.report.FoldedReport`: hashes the fitted
    curves, the kept-sample count, the instance intervals, and the
    per-instance totals/degenerate flags.  A streamed fold is correct
    iff this matches the resident fold of the same trace bit for bit.
    """
    samples = getattr(fold, "samples", None)
    if samples is not None:  # a FoldedReport
        totals, degenerate, n = samples.totals, samples.degenerate, samples.n
    else:
        totals, degenerate, n = fold.totals, fold.degenerate, fold.n_folded
    h = hashlib.sha256()
    h.update(fold.counters.digest().encode())
    h.update(np.int64(n).tobytes())
    h.update(
        np.asarray(fold.instances.intervals, dtype=np.float64).tobytes()
    )
    for name in sorted(totals):
        h.update(name.encode())
        h.update(np.ascontiguousarray(totals[name], dtype=np.float64).tobytes())
        h.update(
            np.asarray(degenerate[name], dtype=bool)
            .astype(np.uint8)
            .tobytes()
        )
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Exact two-pass driver.
# ---------------------------------------------------------------------------

_KNOWN_DIRECTIONS = ("counters", "address", "lines")


def _normalize_directions(directions) -> tuple[str, ...] | None:
    """Canonical direction tuple, or ``None`` for counters-only.

    ``None`` and ``("counters",)`` both mean the PR-6 counters-only
    fold (a :class:`StreamedFold`); anything more returns the canonical
    subset of ``("counters", "address", "lines")`` — counters are
    always folded, so a :class:`StreamedReport` always has its
    performance direction.
    """
    if directions is None:
        return None
    if isinstance(directions, str):
        directions = (directions,)
    requested = set(directions)
    unknown = requested - set(_KNOWN_DIRECTIONS)
    if unknown:
        raise ValueError(
            f"unknown fold directions {sorted(unknown)}; "
            f"choose from {_KNOWN_DIRECTIONS}"
        )
    if requested <= {"counters"}:
        return None
    requested.add("counters")
    return tuple(d for d in _KNOWN_DIRECTIONS if d in requested)


def stream_fold_trace(
    source: Trace | str | Path,
    *,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    grid_points: int = 201,
    bandwidth: float = 0.015,
    prune_tolerance: float | None = 0.5,
    counters: tuple[str, ...] = SAMPLE_COUNTERS,
    cache=None,
    report_every: int | None = None,
    on_snapshot=None,
    directions=None,
    registry: DataObjectRegistry | None = None,
    reservoir_capacity: int = RESERVOIR_CAPACITY,
    reservoir_seed: int = 0,
    reservoir_weighting: str = "uniform",
    line_sigma_bins: int = LINE_SIGMA_BINS,
) -> StreamedFold | StreamedReport:
    """Fold a trace chunk by chunk — exact, two passes, O(chunk) memory.

    Pass 1 builds the instance set from the event sidecar (events are
    O(markers), never O(samples)) and streams ``time_ns`` plus the
    counter columns once to resolve instance-boundary readings, the
    kept-sample count and the σ span.  Pass 2 streams the same columns
    again and accumulates the design.  The result's curves, totals and
    degenerate flags are bit-identical to the resident
    :func:`~repro.folding.report.fold_trace` at the same parameters.

    Parameters
    ----------
    source:
        A :class:`~repro.extrae.trace.Trace` or a path to a saved
        container.  Passing a path keeps the trace lazy: only the
        sidecar and O(chunk) column slices are ever resident.
    chunk_rows:
        Rows per streamed chunk.
    cache:
        Optional :class:`~repro.folding.cache.FoldCache`.  For the
        counters-only fold, keys are identical to the resident fold's,
        so a trace folded resident serves streamed requests and vice
        versa (a resident hit is adapted down to its counters-only
        form; a streamed entry is treated as a miss by the resident
        path, which overwrites it with the full report).  Multi-
        direction streamed reports are keyed under ``kind="streamed"``
        — their address/line products are bounded summaries, not the
        resident views, so they must never alias a resident report.
    report_every:
        Emit a partial-curves snapshot to *on_snapshot* every this many
        chunks of the accumulation pass.
    on_snapshot:
        ``callable(FoldedCounters)`` for the periodic snapshots.
    directions:
        Which fold directions to stream.  ``None`` (or
        ``("counters",)``) keeps the counters-only
        :class:`StreamedFold`; any superset — up to
        ``("counters", "address", "lines")`` — returns a
        :class:`~repro.folding.stream_views.StreamedReport` whose
        extra directions were accumulated in the same pass 2, still in
        O(chunk + summary) memory.
    registry:
        Object registry for the streamed address direction (default:
        built from the trace's object records, exactly as the resident
        fold plan does).
    reservoir_capacity / reservoir_seed / reservoir_weighting:
        Scatter reservoir knobs
        (:class:`~repro.folding.stream_views.AddressReservoir`).
    line_sigma_bins:
        σ resolution of the streamed line/region count matrices.
    """
    trace = source if isinstance(source, Trace) else Trace.load(source)
    dirs = _normalize_directions(directions)
    want_address = dirs is not None and "address" in dirs
    want_lines = dirs is not None and "lines" in dirs
    key = None
    if cache is not None:
        if dirs is None:
            key = cache.key(
                trace,
                grid_points=grid_points,
                bandwidth=bandwidth,
                prune_tolerance=prune_tolerance,
                align_regions=None,
            )
            hit = cache.get(key)
            adapted = _adapt_cache_hit(hit)
            if adapted is not None:
                return adapted
        elif registry is not None:
            # An explicit registry is not captured by the key (exactly
            # as the resident fold treats explicit registries): bypass.
            cache = None
        else:
            # chunk_rows is deliberately absent: the products are
            # chunk-size-invariant, so any chunking serves any other.
            key = cache.key(
                trace,
                kind="streamed",
                grid_points=grid_points,
                bandwidth=bandwidth,
                prune_tolerance=prune_tolerance,
                directions=dirs,
                reservoir_capacity=reservoir_capacity,
                reservoir_seed=reservoir_seed,
                reservoir_weighting=reservoir_weighting,
                line_sigma_bins=line_sigma_bins,
            )
            hit = cache.get(key)
            if isinstance(hit, StreamedReport):
                return hit
    instances = instances_from_iterations(trace)
    if prune_tolerance is not None and instances.n >= 3:
        instances = instances.prune_outliers(prune_tolerance)
    names = ("time_ns", *counters)
    pass1_names = names + (("address",) if want_address else ())
    prologue = build_prologue(
        trace.iter_sample_chunks(pass1_names, chunk_rows),
        instances,
        counters,
        track_address=want_address,
    )
    acc = StreamingFold(prologue, grid_points=grid_points, bandwidth=bandwidth)
    addr_stream = None
    line_stream = None
    extras: tuple[str, ...] = ()
    if want_address:
        if registry is None:
            registry = DataObjectRegistry(trace.objects)
        addr_stream = AddressStream(
            registry,
            prologue.addr_range,
            capacity=reservoir_capacity,
            seed=reservoir_seed,
            weighting=reservoir_weighting,
        )
        extras += ("address", "op", "source", "latency")
    if want_lines:
        line_stream = LineStream(trace.callstack, sigma_bins=line_sigma_bins)
        extras += ("callstack_id",)
    starts, ends = instances.starts_ns, instances.ends_ns
    for chunk in trace.iter_sample_chunks(names + extras, chunk_rows):
        acc.add_chunk(chunk)
        if extras:
            getter = (
                chunk.column if hasattr(chunk, "column") else chunk.__getitem__
            )
            t = np.asarray(getter("time_ns"), dtype=np.float64)
            idx, inside = _inside_mask(t, starts, ends)
            if inside.any():
                ik = idx[inside]
                sigma = (t[inside] - starts[ik]) / (ends[ik] - starts[ik])
                if addr_stream is not None:
                    addr_stream.add(
                        sigma,
                        np.asarray(getter("address"))[inside],
                        np.asarray(getter("op"))[inside],
                        np.asarray(getter("source"))[inside],
                        np.asarray(getter("latency"))[inside],
                    )
                if line_stream is not None:
                    line_stream.add(
                        sigma, np.asarray(getter("callstack_id"))[inside]
                    )
        if (
            report_every
            and on_snapshot is not None
            and acc.n_chunks % report_every == 0
            and acc.n_folded
        ):
            on_snapshot(acc.snapshot())
    result = acc.result(chunk_rows=chunk_rows)
    if dirs is not None:
        result = StreamedReport(
            performance=result,
            addresses=addr_stream.result() if addr_stream is not None else None,
            lines=line_stream.result() if line_stream is not None else None,
            directions=dirs,
        )
    if cache is not None:
        cache.put(key, result)
    return result


def _adapt_cache_hit(hit) -> StreamedFold | None:
    """A cache entry as a :class:`StreamedFold`, if it can serve one.

    Streamed entries pass through; a resident
    :class:`~repro.folding.report.FoldedReport` stored under the same
    key is adapted down to its counters-only form.  Anything else is a
    miss.
    """
    if hit is None:
        return None
    if isinstance(hit, StreamedFold):
        return hit
    from repro.folding.report import FoldedReport

    if isinstance(hit, FoldedReport):
        return StreamedFold(
            instances=hit.instances,
            counters=hit.counters,
            totals=dict(hit.samples.totals),
            degenerate=dict(hit.samples.degenerate),
            n_folded=hit.samples.n,
        )
    return None


# ---------------------------------------------------------------------------
# Single-pass live mode.
# ---------------------------------------------------------------------------


class LiveFold:
    """Single-pass monitoring fold: boundaries arrive with the stream.

    For always-on consumers watching a *live* sample source (a running
    :class:`~repro.extrae.tracer.Tracer`, a socket, a growing file):
    feed sample chunks through :meth:`observe` and iteration markers
    through :meth:`mark_iteration` as they happen; call
    :meth:`snapshot` any time for the partial curves and
    :meth:`finish` once for the final :class:`StreamedFold`.

    Because the final σ span and kept count are unknowable mid-stream,
    the design always bins on the fixed [0, 1] span — deterministic and
    chunk-invariant, but not bit-identical to the resident fit (bin
    width 1/4096 ≤ bandwidth/8 for every ablation bandwidth; the
    equivalence tests pin it against :class:`StreamingFold` with the
    same span override).  Instances are not outlier-pruned: a monitor
    wants to *see* the perturbed instance, not drop it.

    Memory: the design sums plus a raw-row buffer covering the open
    instance and the interpolation window — O(chunk + one instance),
    never O(stream).

    With ``directions`` beyond ``("counters",)`` the flush also feeds
    the bounded address/line accumulators of
    :mod:`repro.folding.stream_views`, and :meth:`snapshot_report`
    serves a partial three-panel
    :class:`~repro.folding.stream_views.StreamedReport` at any point.
    Live limitations, both documented approximations of the offline
    streamed report: the address view has no density sketch (the span
    is unknowable up front) and no object registry (objects are still
    being allocated) — resolve offline against the saved trace for
    full fidelity.  Hook a live fold onto a running simulation with
    ``TracerConfig(live_fold=...)``; the
    :class:`~repro.extrae.tracer.Tracer` feeds samples, iteration
    marks and its call-stack interner automatically.
    """

    def __init__(
        self,
        counters: tuple[str, ...] = SAMPLE_COUNTERS,
        grid_points: int = 201,
        bandwidth: float = 0.015,
        name: str = "iteration",
        directions=None,
        callstack_resolver=None,
        reservoir_capacity: int = RESERVOIR_CAPACITY,
        reservoir_seed: int = 0,
        reservoir_weighting: str = "uniform",
        line_sigma_bins: int = LINE_SIGMA_BINS,
    ) -> None:
        self._counters = tuple(counters)
        self.grid_points = grid_points
        self.bandwidth = bandwidth
        self._name = name or "iteration"
        dirs = _normalize_directions(directions)
        self._directions = dirs if dirs is not None else ("counters",)
        self._addr: AddressStream | None = None
        self._line: LineStream | None = None
        extras: tuple[str, ...] = ()
        if "address" in self._directions:
            self._addr = AddressStream(
                DataObjectRegistry(),
                None,
                capacity=reservoir_capacity,
                seed=reservoir_seed,
                weighting=reservoir_weighting,
            )
            extras += ("address", "op", "source", "latency")
        if "lines" in self._directions:
            self._line = LineStream(
                callstack_resolver, sigma_bins=line_sigma_bins
            )
            extras += ("callstack_id",)
        self._extras = extras
        self._edges = design_bin_edges(0.0, 1.0)
        k = len(self._counters)
        self._acc_w = np.zeros(DESIGN_BINS, dtype=np.float64)
        self._acc_wy = np.zeros((k, DESIGN_BINS), dtype=np.float64)
        self._marks: list[float] = []
        self._bvals: dict[float, dict[str, float]] = {}
        self._intervals: list[tuple[float, float]] = []
        self._totals: dict[str, list[float]] = {n: [] for n in self._counters}
        self._degen: dict[str, list[bool]] = {n: [] for n in self._counters}
        self._flushed = 0
        self._buf: list[dict[str, np.ndarray]] = []
        self._prev: dict[str, np.ndarray] | None = None
        self._dropped_t = -math.inf
        self._last_t: float | None = None
        self._finished = False
        self.n_rows = 0
        self.n_folded = 0
        self.n_chunks = 0

    @property
    def required_columns(self) -> tuple[str, ...]:
        """Columns every :meth:`observe` chunk must carry."""
        return ("time_ns", *self._counters, *self._extras)

    def bind_callstacks(self, resolver) -> None:
        """Late-bind the call-stack resolver for the line direction
        (the :class:`~repro.extrae.tracer.Tracer` hook calls this with
        its trace's interner)."""
        if self._line is not None:
            self._line.bind(resolver)

    # -- inputs ------------------------------------------------------------
    def observe(self, chunk) -> None:
        """Feed one time-ordered sample chunk."""
        if self._finished:
            raise ValueError("LiveFold is finished")
        cols = _chunk_columns(chunk, self.required_columns)
        t = cols["time_ns"]
        self.n_chunks += 1
        if t.size == 0:
            return
        if (np.diff(t) < 0.0).any() or (
            self._last_t is not None and t[0] < self._last_t
        ):
            raise ValueError("sample chunks must arrive in time order")
        # Copy: a live source may reuse or grow its buffers under us.
        self._buf.append({name: arr.copy() for name, arr in cols.items()})
        self._last_t = float(t[-1])
        self.n_rows += int(t.size)
        self._drain()

    def mark_iteration(self, time_ns: float) -> None:
        """Record an iteration boundary at *time_ns*.

        Marks must be strictly increasing and roughly in stream
        position: a mark may trail the samples by up to the retained
        buffer (chunk-granularity lateness is fine), but once rows at
        or past a time have been trimmed, a mark there would fold from
        lost data and is rejected.
        """
        if self._finished:
            raise ValueError("LiveFold is finished")
        time_ns = float(time_ns)
        if self._marks and time_ns <= self._marks[-1]:
            raise ValueError("iteration marks must strictly increase")
        if time_ns <= self._dropped_t:
            raise ValueError(
                "iteration mark arrived after its samples were trimmed — "
                "deliver marks in stream order"
            )
        self._marks.append(time_ns)
        if len(self._marks) >= 2:
            self._intervals.append((self._marks[-2], self._marks[-1]))
        self._drain()

    def finish(self, end_time_ns: float | None = None) -> StreamedFold:
        """Close the open instance and return the final fold.

        The last instance ends at *end_time_ns* (default: the last
        observed sample time), mirroring how the offline instance
        detection closes on the end marker or the trace end.
        """
        if self._finished:
            raise ValueError("LiveFold is already finished")
        if not self._marks:
            raise ValueError("no iteration marks observed")
        end = end_time_ns if end_time_ns is not None else self._last_t
        if end is not None and float(end) > self._marks[-1]:
            self._intervals.append((self._marks[-1], float(end)))
        if not self._intervals:
            raise ValueError("no closed instances to fold")
        self._finished = True
        self._drain()
        instances = FoldInstances(self._name, tuple(self._intervals))
        counters = self._fit(instances.mean_duration_ns)
        return StreamedFold(
            instances=instances,
            counters=counters,
            totals={
                n: np.asarray(v, dtype=np.float64)
                for n, v in self._totals.items()
            },
            degenerate={
                n: np.asarray(v, dtype=bool) for n, v in self._degen.items()
            },
            n_folded=self.n_folded,
            n_chunks=self.n_chunks,
        )

    # -- partial output ----------------------------------------------------
    def snapshot(self) -> FoldedCounters | None:
        """Partial curves over the instances flushed so far.

        ``None`` until at least one instance has closed with samples.
        """
        if self._flushed == 0 or self.n_folded == 0:
            return None
        closed = self._intervals[: self._flushed]
        durations = np.asarray([t1 - t0 for t0, t1 in closed])
        return self._fit(float(durations.mean()))

    def snapshot_report(self) -> StreamedReport | None:
        """Partial three-panel report over the instances flushed so far.

        ``None`` until at least one instance has closed with samples.
        The performance panel matches :meth:`snapshot`; address and
        line panels (when their directions are live) hold exactly the
        flushed samples — a mid-simulation consumer sees the trace
        folded up to the last completed instance.
        """
        counters = self.snapshot()
        if counters is None:
            return None
        closed = tuple(self._intervals[: self._flushed])
        performance = StreamedFold(
            instances=FoldInstances(self._name, closed),
            counters=counters,
            totals={
                n: np.asarray(v[: self._flushed], dtype=np.float64)
                for n, v in self._totals.items()
            },
            degenerate={
                n: np.asarray(v[: self._flushed], dtype=bool)
                for n, v in self._degen.items()
            },
            n_folded=self.n_folded,
            n_chunks=self.n_chunks,
        )
        return StreamedReport(
            performance=performance,
            addresses=self._addr.result() if self._addr is not None else None,
            lines=self._line.result() if self._line is not None else None,
            directions=self._directions,
        )

    def _fit(self, duration_ns: float) -> FoldedCounters:
        if self.n_folded == 0:
            raise ValueError("cannot fold counters without samples")
        design = binned_design_from_sums(self._edges, self._acc_w, self._acc_wy)
        totals_mean = {
            name: float(np.asarray(vals, dtype=np.float64).mean())
            for name, vals in self._totals.items()
        }
        return fit_counter_curves(
            design,
            grid_points=self.grid_points,
            bandwidth=self.bandwidth,
            counters=self._counters,
            totals_mean=totals_mean,
            duration_ns=duration_ns,
        )

    # -- internals ---------------------------------------------------------
    def _window(self) -> dict[str, np.ndarray]:
        parts = ([self._prev] if self._prev is not None else []) + self._buf
        if not parts:
            return {}
        return {
            name: np.concatenate([p[name] for p in parts])
            for name in self.required_columns
        }

    def _boundary(self, at: float) -> dict[str, float]:
        """Counter readings at boundary time *at*, from the window.

        ``np.interp`` at a point only reads the rightmost row at or
        before it and its successor; the trim policy retains both (or
        carries the left one in ``_prev``), so this equals the
        interpolation over the whole series — see the module docstring.
        """
        vals = self._bvals.get(at)
        if vals is None:
            window = self._window()
            if not window or window["time_ns"].size == 0:
                vals = {name: 0.0 for name in self._counters}
            else:
                tw = window["time_ns"]
                vals = {
                    name: float(np.interp(at, tw, window[name]))
                    for name in self._counters
                }
            self._bvals[at] = vals
        return vals

    def _drain(self) -> None:
        while self._flushed < len(self._intervals):
            t1 = self._intervals[self._flushed][1]
            if not self._finished and not (
                self._last_t is not None and t1 < self._last_t
            ):
                break  # end boundary not strictly passed yet
            self._flush(self._flushed)
            self._flushed += 1
        self._trim()

    def _flush(self, i: int) -> None:
        t0, t1 = self._intervals[i]
        b0 = self._boundary(t0)
        b1 = self._boundary(t1)
        window = self._window()
        t = window.get("time_ns", np.empty(0))
        keep = (t >= t0) & (t < t1)
        tk = t[keep]
        sigma = (tk - t0) / (t1 - t0)
        which = assign_design_bins(sigma, self._edges)
        for row, name in enumerate(self._counters):
            totals, degen, denom = boundary_increments(
                np.asarray([b0[name]]), np.asarray([b1[name]])
            )
            frac = np.clip(
                (window[name][keep] - b0[name]) / denom[0], 0.0, 1.0
            )
            np.add.at(self._acc_wy[row], which, frac)
            self._totals[name].append(float(totals[0]))
            self._degen[name].append(bool(degen[0]))
        self._acc_w += np.bincount(which, minlength=DESIGN_BINS)
        if self._addr is not None:
            self._addr.add(
                sigma,
                window["address"][keep],
                window["op"][keep],
                window["source"][keep],
                window["latency"][keep],
            )
        if self._line is not None:
            self._line.add(sigma, window["callstack_id"][keep])
        self.n_folded += int(tk.size)

    def _trim(self) -> None:
        """Drop buffered chunks no longer reachable by a future flush.

        Rows below the first unflushed instance start (or, with every
        closed instance flushed, below the open instance's start) can
        only ever be needed as the left edge of a boundary-
        interpolation window, so the last dropped row is carried in
        ``_prev`` as that edge.
        """
        if self._flushed < len(self._intervals):
            threshold = self._intervals[self._flushed][0]
        elif self._marks and not self._finished:
            threshold = self._marks[-1]
        else:
            threshold = math.inf
        while self._buf and float(self._buf[0]["time_ns"][-1]) < threshold:
            if not self._marks and not self._finished and len(self._buf) == 1:
                break  # keep one chunk of slack for a slightly late first mark
            dropped = self._buf.pop(0)
            self._prev = {name: arr[-1:] for name, arr in dropped.items()}
            self._dropped_t = float(dropped["time_ns"][-1])
