"""Streaming the address and line fold directions.

PR 6 streamed the *performance* direction (counter curves) in O(chunk)
memory; this module streams the other two panels of Figure 1 — the
folded address scatter and the source-line track — so a complete
three-direction report fits in O(chunk + summary) memory.

Each direction keeps a different kind of bounded state:

* **Address, exact part** — :class:`AddressAccounting`: per-object,
  per-source and per-op counts plus per-object latency sums.  All sums
  are additive in stream order, so the chunked accumulation is
  bit-identical to the resident fold (verified by digest).
* **Address, scatter part** — the full (σ, address) scatter is O(kept
  samples), so it cannot be held exactly.  Two bounded summaries stand
  in for it: a deterministic seeded weighted reservoir
  (:class:`AddressReservoir`, for point rendering) and a fixed
  (address-band × σ-bin) integer density sketch
  (:class:`DensitySketch`, for exact-bin density).  Both are
  chunk-size-invariant by construction: the reservoir keeps the global
  top-``capacity`` samples under a hash-seeded key (Efraimidis–Spirakis
  A-Res), and the sketch is a sum of non-negative integers.  Their
  fidelity against the resident scatter is *measured*, not assumed
  (:func:`measure_address_fidelity`).
* **Lines** — per-chunk ``np.unique(callstack_id)`` feeds a persistent
  :class:`~repro.folding.lines.LineTableBuilder`, and the per-sample
  points collapse into fixed (line × σ-bin) and (region × σ-bin) count
  matrices.  ``dominant_region`` and ``region_sequence`` work off the
  matrices exactly as off the resident points for phase-shaped
  workloads (exact for bin-aligned windows).

The driver lives in :func:`repro.folding.stream.stream_fold_trace`
(``directions=("counters", "address", "lines")``); this module holds
the per-direction accumulators and the combined
:class:`StreamedReport` product.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.folding.address import AddressBand, FoldedAddresses
from repro.folding.lines import FoldedLines, LineTableBuilder
from repro.memsim.datasource import DataSource
from repro.memsim.patterns import MemOp
from repro.objects.registry import DataObjectRegistry

__all__ = [
    "AddressAccounting",
    "AddressFidelity",
    "AddressReservoir",
    "AddressStream",
    "DensitySketch",
    "LINE_SIGMA_BINS",
    "LineStream",
    "RESERVOIR_CAPACITY",
    "SKETCH_BANDS",
    "SKETCH_SIGMA_BINS",
    "StreamedAddresses",
    "StreamedLines",
    "StreamedReport",
    "lines_from_folded",
    "measure_address_fidelity",
    "sketch_from_scatter",
]

#: σ resolution of the streamed line/region count matrices.  4096 bins
#: keep windows at multiples of 1/4096 (0.25, 0.5, …) exactly
#: bin-aligned, so ``dominant_region`` over such windows is exact.
LINE_SIGMA_BINS = 4096
#: σ resolution of the address density sketch.
SKETCH_SIGMA_BINS = 512
#: Address-band resolution of the density sketch.
SKETCH_BANDS = 256
#: Default reservoir size — enough to render a dense scatter panel.
RESERVOIR_CAPACITY = 65536

_N_SOURCE_CODES = int(max(DataSource)) + 1
_N_OP_CODES = int(max(MemOp)) + 1

# splitmix64 (same finalizer idiom as repro.simproc.spe).
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_SPLITMIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLITMIX_2 = np.uint64(0x94D049BB133111EB)


def _mix64(x: np.ndarray) -> np.ndarray:
    """Full splitmix64 of a uint64 array (gamma step + finalizer)."""
    x = np.asarray(x, dtype=np.uint64) + np.uint64(_SPLITMIX_GAMMA)
    x = (x ^ (x >> np.uint64(30))) * _SPLITMIX_1
    x = (x ^ (x >> np.uint64(27))) * _SPLITMIX_2
    return x ^ (x >> np.uint64(31))


def _hash_arrays(*arrays: np.ndarray) -> "hashlib._Hash":
    h = hashlib.sha256()
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(str(a.dtype).encode())
        h.update(np.int64(a.size).tobytes())
        h.update(a.tobytes())
    return h


# ---------------------------------------------------------------------------
# Address direction: exact accounting.
# ---------------------------------------------------------------------------


@dataclass
class AddressAccounting:
    """Exact additive accounting of the streamed address samples.

    Per-object rows (index = registry record index, trailing row =
    unmatched), per-source and per-op counts, and per-object latency
    sums.  Every field is a plain sum in stream order, so feeding the
    samples chunk by chunk replays the identical addition sequence as
    the resident one-shot fold — the digests match bit for bit.
    """

    #: samples resolved to each object; last row collects unmatched.
    object_counts: np.ndarray
    object_loads: np.ndarray
    object_stores: np.ndarray
    object_latency: np.ndarray
    #: samples per :class:`~repro.memsim.datasource.DataSource` code.
    source_counts: np.ndarray
    #: samples per :class:`~repro.memsim.patterns.MemOp` code.
    op_counts: np.ndarray
    n: int = 0

    @classmethod
    def empty(cls, n_objects: int) -> "AddressAccounting":
        rows = n_objects + 1
        return cls(
            object_counts=np.zeros(rows, dtype=np.int64),
            object_loads=np.zeros(rows, dtype=np.int64),
            object_stores=np.zeros(rows, dtype=np.int64),
            object_latency=np.zeros(rows, dtype=np.float64),
            source_counts=np.zeros(_N_SOURCE_CODES, dtype=np.int64),
            op_counts=np.zeros(_N_OP_CODES, dtype=np.int64),
        )

    @classmethod
    def from_addresses(cls, addresses: FoldedAddresses) -> "AddressAccounting":
        """The resident reference: account a whole folded scatter."""
        acc = cls.empty(len(addresses.registry))
        acc.add(
            addresses.op,
            addresses.source,
            addresses.latency,
            addresses.object_index,
        )
        return acc

    def add(
        self,
        op: np.ndarray,
        source: np.ndarray,
        latency: np.ndarray,
        object_index: np.ndarray,
    ) -> None:
        """Account one chunk of samples (order-exact accumulation)."""
        op = np.asarray(op, dtype=np.int64)
        source = np.asarray(source, dtype=np.int64)
        latency = np.asarray(latency, dtype=np.float64)
        obj = np.asarray(object_index, dtype=np.int64)
        unmatched_row = self.object_counts.size - 1
        slot = np.where(obj >= 0, obj, unmatched_row)
        np.add.at(self.object_counts, slot, 1)
        np.add.at(self.object_loads, slot[op == int(MemOp.LOAD)], 1)
        np.add.at(self.object_stores, slot[op == int(MemOp.STORE)], 1)
        np.add.at(self.object_latency, slot, latency)
        np.add.at(self.source_counts, source, 1)
        np.add.at(self.op_counts, op, 1)
        self.n += int(op.size)

    def matched_fraction(self) -> float:
        """Exact fraction of samples resolved to a registered object."""
        if not self.n:
            return 0.0
        return float((self.n - self.object_counts[-1]) / self.n)

    def digest(self) -> str:
        """Hex SHA-256 over every accumulator (and the sample count)."""
        h = _hash_arrays(
            self.object_counts,
            self.object_loads,
            self.object_stores,
            self.object_latency,
            self.source_counts,
            self.op_counts,
        )
        h.update(np.int64(self.n).tobytes())
        return h.hexdigest()


# ---------------------------------------------------------------------------
# Address direction: bounded scatter summaries.
# ---------------------------------------------------------------------------

_RESERVOIR_COLUMNS = (
    "sigma",
    "address",
    "op",
    "source",
    "latency",
    "object_index",
)
_COLUMN_DTYPES = {
    "sigma": np.float64,
    "address": np.uint64,
    "op": np.int64,
    "source": np.int64,
    "latency": np.float64,
    "object_index": np.int64,
}


class AddressReservoir:
    """Deterministic weighted reservoir over the (σ, address) scatter.

    Efraimidis–Spirakis A-Res with the randomness replaced by a
    splitmix64 hash of ``(seed, global kept index)``: sample *i* gets
    ``u_i = ((h_i >> 11) + 1) · 2⁻⁵³ ∈ (0, 1]`` and key
    ``ln(u_i) / w_i``; the reservoir holds the ``capacity`` samples
    with the largest keys.  Because the key depends only on the seed
    and the sample's global index, the surviving set is the global
    top-``capacity`` regardless of how the stream was chunked —
    bit-identical across chunk sizes.  With ``weighting="uniform"``
    (``w = 1``) the reservoir is a uniform sample, faithful to point
    density; ``"latency"`` (``w = 1 + latency``) biases retention
    toward slow accesses for hot-spot rendering.
    """

    def __init__(
        self,
        capacity: int = RESERVOIR_CAPACITY,
        seed: int = 0,
        weighting: str = "uniform",
    ) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be positive")
        if weighting not in ("uniform", "latency"):
            raise ValueError(f"unknown reservoir weighting {weighting!r}")
        self.capacity = int(capacity)
        self.seed = int(seed)
        self.weighting = weighting
        self._keys = np.empty(0, dtype=np.float64)
        self._index = np.empty(0, dtype=np.int64)
        self._cols = {
            name: np.empty(0, dtype=_COLUMN_DTYPES[name])
            for name in _RESERVOIR_COLUMNS
        }

    def _keys_for(self, index: np.ndarray, latency: np.ndarray) -> np.ndarray:
        base = (self.seed * _SPLITMIX_GAMMA) % (1 << 64)
        h = _mix64(np.uint64(base) + index.astype(np.uint64))
        u = ((h >> np.uint64(11)).astype(np.float64) + 1.0) * 2.0**-53
        keys = np.log(u)
        if self.weighting == "latency":
            keys = keys / (1.0 + np.asarray(latency, dtype=np.float64))
        return keys

    def add(self, start_index: int, **columns: np.ndarray) -> None:
        """Offer a chunk of kept samples (global indices start at
        *start_index*); keeps the global top-``capacity`` by key."""
        n = int(np.asarray(columns["sigma"]).size)
        if not n:
            return
        index = start_index + np.arange(n, dtype=np.int64)
        keys = np.concatenate(
            [self._keys, self._keys_for(index, columns["latency"])]
        )
        index = np.concatenate([self._index, index])
        cols = {
            name: np.concatenate(
                [
                    self._cols[name],
                    np.asarray(columns[name]).astype(_COLUMN_DTYPES[name]),
                ]
            )
            for name in _RESERVOIR_COLUMNS
        }
        if keys.size > self.capacity:
            # Largest key first; global index breaks (improbable) ties
            # so the selection is a pure function of (seed, indices).
            order = np.lexsort((index, -keys))[: self.capacity]
            keys, index = keys[order], index[order]
            cols = {name: col[order] for name, col in cols.items()}
        self._keys, self._index, self._cols = keys, index, cols

    def result(self) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """The surviving samples in stream order: ``(kept_index,
        columns)``."""
        order = np.argsort(self._index, kind="stable")
        return self._index[order], {
            name: col[order] for name, col in self._cols.items()
        }


@dataclass
class DensitySketch:
    """Fixed (address-band × σ-bin) integer density of the scatter.

    ``counts[b, s]`` is the exact number of kept samples whose address
    falls in band *b* of ``[lo, hi]`` and whose σ falls in bin *s* of
    ``[0, 1)``.  Integer sums are associative, so the sketch is exactly
    chunk-invariant *and* exactly equal to binning the resident scatter
    — its density error against the resident fold is identically zero;
    the rendering trade-off is purely the fixed bin resolution.
    """

    lo: int
    hi: int
    counts: np.ndarray

    @classmethod
    def empty(
        cls,
        lo: int,
        hi: int,
        bands: int = SKETCH_BANDS,
        sigma_bins: int = SKETCH_SIGMA_BINS,
    ) -> "DensitySketch":
        if hi < lo:
            raise ValueError("empty address span")
        return cls(
            lo=int(lo),
            hi=int(hi),
            counts=np.zeros((bands, sigma_bins), dtype=np.int64),
        )

    @property
    def bands(self) -> int:
        return int(self.counts.shape[0])

    @property
    def sigma_bins(self) -> int:
        return int(self.counts.shape[1])

    @property
    def n(self) -> int:
        return int(self.counts.sum())

    def add(self, sigma: np.ndarray, address: np.ndarray) -> None:
        sigma = np.asarray(sigma, dtype=np.float64)
        if not sigma.size:
            return
        address = np.asarray(address).astype(np.uint64)
        span = np.uint64(self.hi - self.lo + 1)
        # addresses stay < 2^48 and bands ≤ 2^16, so the product fits
        # comfortably in uint64 — exact integer band index.
        band = ((address - np.uint64(self.lo)) * np.uint64(self.bands)) // span
        band = np.minimum(band.astype(np.int64), self.bands - 1)
        sbin = np.minimum(
            (sigma * self.sigma_bins).astype(np.int64), self.sigma_bins - 1
        )
        np.add.at(self.counts, (band, sbin), 1)

    def band_edges(self) -> np.ndarray:
        """The ``bands + 1`` address edges of the sketch rows."""
        span = self.hi - self.lo + 1
        return self.lo + np.arange(self.bands + 1, dtype=np.float64) * (
            span / self.bands
        )

    def band_density(self) -> np.ndarray:
        """Fraction of samples per address band (sums to 1 when any)."""
        total = self.counts.sum()
        if not total:
            return np.zeros(self.bands, dtype=np.float64)
        return self.counts.sum(axis=1) / total

    def digest(self) -> str:
        h = _hash_arrays(self.counts)
        h.update(np.int64(self.lo).tobytes())
        h.update(np.int64(self.hi).tobytes())
        return h.hexdigest()


def sketch_from_scatter(
    addresses: FoldedAddresses,
    lo: int,
    hi: int,
    bands: int = SKETCH_BANDS,
    sigma_bins: int = SKETCH_SIGMA_BINS,
) -> DensitySketch:
    """The resident reference: sketch a whole folded scatter over the
    same span/resolution as a streamed sketch."""
    sketch = DensitySketch.empty(lo, hi, bands, sigma_bins)
    sketch.add(addresses.sigma, addresses.address)
    return sketch


# ---------------------------------------------------------------------------
# Address direction: streamed product.
# ---------------------------------------------------------------------------


@dataclass
class StreamedAddresses:
    """The streamed stand-in for :class:`FoldedAddresses`.

    The *exact* per-object/source/op/latency accounting plus the two
    bounded scatter summaries.  The reservoir columns mirror the
    resident scatter's columns (same names, same dtypes) so rendering
    and export code can treat either; analyses that were exact on the
    resident scatter but touch individual points (``sweep_of``,
    ``stores_in_range``) run on the reservoir subsample here and are
    approximate, while counts via :attr:`accounting` stay exact.
    """

    accounting: AddressAccounting
    registry: DataObjectRegistry
    #: ``None`` in live mode, where the address span is unknowable
    #: up front (no whole-trace prologue pass)
    sketch: DensitySketch | None
    #: reservoir columns, in stream order
    sigma: np.ndarray
    address: np.ndarray
    op: np.ndarray
    source: np.ndarray
    latency: np.ndarray
    object_index: np.ndarray
    #: global kept index of each reservoir point
    kept_index: np.ndarray
    capacity: int
    seed: int
    weighting: str
    bands: list[AddressBand] = field(default_factory=list)

    @property
    def n(self) -> int:
        """Reservoir points held (≤ :attr:`capacity`)."""
        return int(self.sigma.size)

    @property
    def n_folded(self) -> int:
        """Exact number of streamed samples (accounting side)."""
        return self.accounting.n

    @property
    def loads(self) -> np.ndarray:
        return self.op == int(MemOp.LOAD)

    @property
    def stores(self) -> np.ndarray:
        return self.op == int(MemOp.STORE)

    def matched_fraction(self) -> float:
        """Exact matched fraction, from the accounting (not the
        reservoir)."""
        return self.accounting.matched_fraction()

    def annotate(self, label: str, lo: int, hi: int) -> None:
        self.bands.append(AddressBand(label, lo, hi))

    def in_range(self, lo: int, hi: int) -> np.ndarray:
        return (self.address >= lo) & (self.address < hi)

    def stores_in_range(self, lo: int, hi: int) -> int:
        """Sampled stores within a range, over the *reservoir* points."""
        return int((self.stores & self.in_range(lo, hi)).sum())

    def object_samples(self, name: str) -> np.ndarray:
        """Reservoir-point mask for the object called *name*."""
        return self.object_index == self.registry.index_of(name)

    def sweep_of(self, mask: np.ndarray) -> tuple[float, float]:
        """Linear sweep fit over masked reservoir points."""
        if mask.sum() < 2:
            raise ValueError("need at least two samples to fit a sweep")
        slope, intercept = np.polyfit(
            self.sigma[mask], self.address[mask].astype(np.float64), 1
        )
        return float(intercept), float(slope)

    def digest(self) -> str:
        """Hex SHA-256 over accounting, sketch and reservoir state."""
        h = _hash_arrays(
            self.sigma,
            self.address,
            self.op,
            self.source,
            self.latency,
            self.object_index,
            self.kept_index,
        )
        h.update(self.accounting.digest().encode())
        h.update(
            self.sketch.digest().encode()
            if self.sketch is not None
            else b"no-sketch"
        )
        h.update(
            f"{self.capacity}:{self.seed}:{self.weighting}".encode()
        )
        return h.hexdigest()


class AddressStream:
    """Chunkwise accumulator for the streamed address direction."""

    def __init__(
        self,
        registry: DataObjectRegistry,
        addr_range: tuple[int, int] | None,
        *,
        capacity: int = RESERVOIR_CAPACITY,
        seed: int = 0,
        weighting: str = "uniform",
        bands: int = SKETCH_BANDS,
        sigma_bins: int = SKETCH_SIGMA_BINS,
    ) -> None:
        self.registry = registry
        self.accounting = AddressAccounting.empty(len(registry))
        self.reservoir = AddressReservoir(capacity, seed, weighting)
        # Live consumers cannot know the span up front; they run
        # without the sketch (reservoir + exact accounting only).
        self.sketch = (
            DensitySketch.empty(addr_range[0], addr_range[1], bands, sigma_bins)
            if addr_range is not None
            else None
        )
        self._kept = 0

    def add(
        self,
        sigma: np.ndarray,
        address: np.ndarray,
        op: np.ndarray,
        source: np.ndarray,
        latency: np.ndarray,
    ) -> None:
        """Fold one chunk of kept samples (stream order)."""
        address = np.asarray(address).astype(np.uint64)
        # One bulk resolve per chunk; the registry caches its interval
        # tables, so the per-chunk cost is the lookup alone.
        object_index = self.registry.resolve_bulk(address)
        self.accounting.add(op, source, latency, object_index)
        if self.sketch is not None:
            self.sketch.add(sigma, address)
        self.reservoir.add(
            self._kept,
            sigma=sigma,
            address=address,
            op=op,
            source=source,
            latency=latency,
            object_index=object_index,
        )
        self._kept += int(np.asarray(sigma).size)

    def result(self) -> StreamedAddresses:
        kept_index, cols = self.reservoir.result()
        return StreamedAddresses(
            accounting=self.accounting,
            registry=self.registry,
            sketch=self.sketch,
            kept_index=kept_index,
            capacity=self.reservoir.capacity,
            seed=self.reservoir.seed,
            weighting=self.reservoir.weighting,
            **cols,
        )


# ---------------------------------------------------------------------------
# Line direction.
# ---------------------------------------------------------------------------


@dataclass
class StreamedLines:
    """The streamed stand-in for :class:`FoldedLines`.

    Fixed (line × σ-bin) and (region × σ-bin) count matrices over the
    same tables a resident fold would build.  Windowed queries
    (``dominant_region``) are exact whenever the window is bin-aligned
    (any multiple of ``1 / sigma_bins``); ``region_sequence`` walks the
    bins in σ order and reproduces the resident sequence for
    phase-shaped workloads, where regions occupy contiguous σ spans.
    """

    line_table: list[tuple[str, str, int]]
    region_table: list[str]
    #: ``line_counts[l, s]`` — samples of line *l* in σ-bin *s*
    line_counts: np.ndarray
    region_counts: np.ndarray

    @property
    def sigma_bins(self) -> int:
        return int(self.region_counts.shape[1])

    @property
    def n(self) -> int:
        return int(self.region_counts.sum())

    def dominant_region(self, lo: float, hi: float) -> str:
        """Most common region among samples with σ in [lo, hi)."""
        bins = self.sigma_bins
        b0 = max(int(np.floor(lo * bins)), 0)
        b1 = min(max(int(np.ceil(hi * bins)), b0 + 1), bins)
        counts = self.region_counts[:, b0:b1].sum(axis=1)
        if not counts.any():
            raise ValueError(f"no samples in window [{lo}, {hi})")
        return self.region_table[int(np.argmax(counts))]

    def region_sequence(self, min_run: int = 5) -> list[str]:
        """Regions in σ order, short runs dropped — the streamed
        counterpart of :meth:`FoldedLines.region_sequence`.

        Each σ bin is attributed to its dominant region; a run's length
        is the dominant region's sample count across the run's bins.
        """
        dom = np.argmax(self.region_counts, axis=0)
        occupied = self.region_counts.sum(axis=0) > 0
        out: list[str] = []
        run_id, run_len = None, 0

        def close() -> None:
            if run_id is not None and run_len >= min_run:
                name = self.region_table[int(run_id)]
                if not out or out[-1] != name:
                    out.append(name)

        for b in range(self.sigma_bins):
            if not occupied[b]:
                continue
            r = dom[b]
            if r == run_id:
                run_len += int(self.region_counts[r, b])
            else:
                close()
                run_id, run_len = r, int(self.region_counts[r, b])
        close()
        return out

    def digest(self) -> str:
        """Hex SHA-256, canonicalized by sorting rows by table key.

        The resident fold interns ids in sorted-unique order and the
        streamed fold in first-appearance order; sorting the matrix
        rows by their (function, file, line) / region-name keys makes
        the digest order-independent, so the two sides compare equal
        iff the counts agree.
        """
        line_order = np.array(
            sorted(range(len(self.line_table)), key=self.line_table.__getitem__),
            dtype=np.int64,
        )
        region_order = np.array(
            sorted(
                range(len(self.region_table)), key=self.region_table.__getitem__
            ),
            dtype=np.int64,
        )
        h = _hash_arrays(
            self.line_counts[line_order] if len(line_order) else self.line_counts,
            self.region_counts[region_order]
            if len(region_order)
            else self.region_counts,
        )
        for i in line_order:
            h.update(repr(self.line_table[int(i)]).encode())
        for i in region_order:
            h.update(self.region_table[int(i)].encode())
        return h.hexdigest()


class LineStream:
    """Chunkwise accumulator for the streamed line direction."""

    def __init__(
        self,
        resolver=None,
        sigma_bins: int = LINE_SIGMA_BINS,
    ) -> None:
        self.builder = LineTableBuilder(resolver)
        self.sigma_bins = int(sigma_bins)
        self._line_counts = np.zeros((0, self.sigma_bins), dtype=np.int64)
        self._region_counts = np.zeros((0, self.sigma_bins), dtype=np.int64)

    def bind(self, resolver) -> None:
        """Late-bind the call-stack resolver (live Tracer wiring)."""
        self.builder.bind(resolver)

    def _grown(self, counts: np.ndarray, rows: int) -> np.ndarray:
        if counts.shape[0] >= rows:
            return counts
        grown = np.zeros((rows, self.sigma_bins), dtype=np.int64)
        grown[: counts.shape[0]] = counts
        return grown

    def add(self, sigma: np.ndarray, callstack_id: np.ndarray) -> None:
        """Fold one chunk of kept samples (stream order)."""
        sigma = np.asarray(sigma, dtype=np.float64)
        if not sigma.size:
            return
        cs_ids = np.asarray(callstack_id).astype(np.int64)
        # Intern this chunk's unseen ids in FIRST-APPEARANCE order (not
        # sorted-id order): an id's first appearance in the time-ordered
        # stream is a fixed position regardless of chunking, so the
        # table order is chunk-invariant.
        uniq, first = np.unique(cs_ids, return_index=True)
        self.builder.intern(uniq[np.argsort(first, kind="stable")])
        line_id = self.builder.line_ids_of(cs_ids)
        region_id = self.builder.region_ids_of(cs_ids)
        self._line_counts = self._grown(
            self._line_counts, len(self.builder.line_table)
        )
        self._region_counts = self._grown(
            self._region_counts, len(self.builder.region_table)
        )
        sbin = np.minimum(
            (sigma * self.sigma_bins).astype(np.int64), self.sigma_bins - 1
        )
        np.add.at(self._line_counts, (line_id, sbin), 1)
        np.add.at(self._region_counts, (region_id, sbin), 1)

    def result(self) -> StreamedLines:
        return StreamedLines(
            line_table=list(self.builder.line_table),
            region_table=list(self.builder.region_table),
            line_counts=self._line_counts.copy(),
            region_counts=self._region_counts.copy(),
        )


def lines_from_folded(
    lines: FoldedLines, sigma_bins: int = LINE_SIGMA_BINS
) -> StreamedLines:
    """The resident reference: bin a whole resident line fold into the
    streamed matrices (same σ resolution)."""
    line_counts = np.zeros((len(lines.line_table), sigma_bins), dtype=np.int64)
    region_counts = np.zeros(
        (len(lines.region_table), sigma_bins), dtype=np.int64
    )
    if lines.n:
        sbin = np.minimum(
            (np.asarray(lines.sigma, dtype=np.float64) * sigma_bins).astype(
                np.int64
            ),
            sigma_bins - 1,
        )
        np.add.at(line_counts, (lines.line_id, sbin), 1)
        np.add.at(region_counts, (lines.region_id, sbin), 1)
    return StreamedLines(
        line_table=list(lines.line_table),
        region_table=list(lines.region_table),
        line_counts=line_counts,
        region_counts=region_counts,
    )


# ---------------------------------------------------------------------------
# The combined product.
# ---------------------------------------------------------------------------


@dataclass
class StreamedReport:
    """All streamed fold directions of one trace.

    ``performance`` is the PR-6 :class:`~repro.folding.stream
    .StreamedFold` (bit-identical counter curves); ``addresses`` and
    ``lines`` are the bounded summaries of the other two panels, or
    ``None`` when their direction was not requested.
    """

    performance: object
    addresses: StreamedAddresses | None
    lines: StreamedLines | None
    directions: tuple[str, ...]

    @property
    def counters(self):
        return self.performance.counters

    @property
    def instances(self):
        return self.performance.instances

    @property
    def registry(self) -> DataObjectRegistry | None:
        return self.addresses.registry if self.addresses is not None else None

    @property
    def n_folded(self) -> int:
        return int(self.performance.n_folded)

    def digest(self) -> str:
        """Hex SHA-256 over every streamed direction."""
        from repro.folding.stream import fold_digest

        h = hashlib.sha256()
        h.update(fold_digest(self.performance).encode())
        if self.addresses is not None:
            h.update(self.addresses.digest().encode())
        if self.lines is not None:
            h.update(self.lines.digest().encode())
        return h.hexdigest()

    def summary(self) -> str:
        lines = [self.performance.summary()]
        if self.addresses is not None:
            a = self.addresses
            sketch = (
                f"sketch {a.sketch.bands}x{a.sketch.sigma_bins}"
                if a.sketch is not None
                else "no sketch (live)"
            )
            lines.append(
                f"addresses: {a.n_folded} samples "
                f"({a.matched_fraction():.1%} matched), "
                f"reservoir {a.n}/{a.capacity} ({a.weighting}), " + sketch
            )
        if self.lines is not None:
            li = self.lines
            lines.append(
                f"lines: {len(li.line_table)} lines, "
                f"{len(li.region_table)} regions over "
                f"{li.sigma_bins} sigma bins"
            )
        return "\n".join(lines)

    def export_gnuplot(self, directory: str | Path) -> list[Path]:
        """Write the streamed panels as whitespace-separated files.

        * ``counters.dat`` — identical to the resident export
        * ``addresses.dat`` — the reservoir points, resident columns
        * ``address_density.dat`` — the sketch (band lo/hi × σ-bin)
        * ``codeline_density.dat`` — per-line σ-bin counts
        * ``objects.dat`` — registry records plus annotation bands
        """
        from repro.folding.report import (
            _fmt_float,
            _fmt_hex,
            _fmt_int,
            _write_columns,
            export_counters_dat,
        )

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = [export_counters_dat(self.counters, directory)]

        if self.addresses is not None:
            a = self.addresses
            path = directory / "addresses.dat"
            names = np.array(
                [rec.name for rec in a.registry.records] + ["-"], dtype=object
            )
            if a.n:
                src_uniq, src_inv = np.unique(a.source, return_inverse=True)
                src_pretty = np.array(
                    [DataSource(int(s)).pretty for s in src_uniq], dtype=object
                )
                source_col = src_pretty[src_inv].tolist()
            else:
                source_col = []
            _write_columns(
                path,
                "# sigma address op source latency object",
                _fmt_float(a.sigma, 6),
                _fmt_hex(a.address),
                _fmt_int(a.op),
                source_col,
                _fmt_float(a.latency, 1),
                names[a.object_index].tolist() if a.n else [],
            )
            written.append(path)

            sketch = a.sketch
            if sketch is not None:
                path = directory / "address_density.dat"
                edges = sketch.band_edges()
                rows = ["# band_lo band_hi " + " ".join(
                    f"s{j}" for j in range(sketch.sigma_bins)
                )]
                for b in range(sketch.bands):
                    counts = " ".join(str(int(c)) for c in sketch.counts[b])
                    rows.append(
                        f"{int(edges[b]):#x} {int(edges[b + 1]):#x} {counts}"
                    )
                path.write_text("\n".join(rows) + "\n")
                written.append(path)

            path = directory / "objects.dat"
            obj_rows = [
                f"{rec.name} {rec.kind} {rec.start:#x} {rec.end:#x} "
                f"{rec.bytes_user}"
                for rec in a.registry.records
            ]
            obj_rows += [
                f"{band.label} band {band.lo:#x} {band.hi:#x} 0"
                for band in a.bands
            ]
            path.write_text(
                "\n".join(["# name kind start end bytes_user", *obj_rows])
                + "\n"
            )
            written.append(path)

        if self.lines is not None:
            li = self.lines
            path = directory / "codeline_density.dat"
            rows = ["# line_id function file line " + " ".join(
                f"s{j}" for j in range(li.sigma_bins)
            )]
            for i, (function, file, line) in enumerate(li.line_table):
                counts = " ".join(str(int(c)) for c in li.line_counts[i])
                rows.append(f"{i} {function} {file} {line} {counts}")
            path.write_text("\n".join(rows) + "\n")
            written.append(path)
        return written


# ---------------------------------------------------------------------------
# Fidelity measurement.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AddressFidelity:
    """Measured fidelity of a streamed address view against the
    resident :class:`FoldedAddresses` of the same trace."""

    #: exact streamed matched fraction (accounting side)
    matched_fraction_streamed: float
    matched_fraction_resident: float
    #: |streamed − resident| — zero because the accounting is exact
    matched_fraction_error: float
    #: max abs per-band density error of the *sketch* — identically
    #: zero by construction (integer binning of the same samples)
    sketch_band_error: float
    #: max abs per-band density error of the *reservoir* subsample —
    #: the real (measured) approximation cost of point rendering
    reservoir_band_error: float
    #: True iff the streamed accounting digest equals the resident's
    accounting_exact: bool
    reservoir_points: int
    resident_points: int


def measure_address_fidelity(
    streamed: StreamedAddresses, resident: FoldedAddresses
) -> AddressFidelity:
    """Measure the streamed address view's fidelity bounds."""
    sketch = streamed.sketch
    if sketch is None:
        raise ValueError(
            "fidelity measurement needs the density sketch — live views "
            "(no whole-trace prologue) cannot be measured this way"
        )
    resident_sketch = sketch_from_scatter(
        resident, sketch.lo, sketch.hi, sketch.bands, sketch.sigma_bins
    )
    resident_density = resident_sketch.band_density()
    sketch_err = float(
        np.abs(sketch.band_density() - resident_density).max()
    )
    if streamed.n:
        span = np.uint64(sketch.hi - sketch.lo + 1)
        band = (
            (streamed.address - np.uint64(sketch.lo))
            * np.uint64(sketch.bands)
        ) // span
        band = np.minimum(band.astype(np.int64), sketch.bands - 1)
        reservoir_density = (
            np.bincount(band, minlength=sketch.bands) / streamed.n
        )
    else:
        reservoir_density = np.zeros(sketch.bands)
    reservoir_err = float(np.abs(reservoir_density - resident_density).max())
    mf_s = streamed.matched_fraction()
    mf_r = resident.matched_fraction()
    return AddressFidelity(
        matched_fraction_streamed=mf_s,
        matched_fraction_resident=mf_r,
        matched_fraction_error=abs(mf_s - mf_r),
        sketch_band_error=sketch_err,
        reservoir_band_error=reservoir_err,
        accounting_exact=(
            streamed.accounting.digest()
            == AddressAccounting.from_addresses(resident).digest()
        ),
        reservoir_points=streamed.n,
        resident_points=resident.n,
    )
