"""Sample projection onto the normalized instance timeline.

Every retained sample gets

* ``sigma`` — its position inside its instance, normalized to [0, 1);
* ``instance`` — which instance it came from;
* one *normalized cumulative fraction* per counter — how much of the
  instance's total count had accrued by the sample, in [0, 1].

Counter values at instance boundaries are interpolated from the
cumulative counter readings the samples carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.extrae.trace import SampleTable
from repro.folding.detect import FoldInstances
from repro.simproc.machine import SAMPLE_COUNTERS

__all__ = [
    "FoldedSamples",
    "boundary_increments",
    "boundary_values",
    "count_in_instances",
    "fold_samples",
]


def _inside_mask(
    t: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-sample instance index and inside-any-instance mask.

    ``starts`` must be sorted ascending (instance intervals are
    disjoint and time-ordered by construction).
    """
    idx = np.searchsorted(starts, t, side="right") - 1
    inside = (idx >= 0) & (t < ends[np.maximum(idx, 0)])
    return idx, inside


def boundary_values(
    t: np.ndarray, series: np.ndarray, at: np.ndarray
) -> np.ndarray:
    """Cumulative counter readings interpolated at boundary times *at*.

    A trace with no samples reads zero everywhere (there is nothing to
    interpolate from).
    """
    return np.interp(at, t, series) if t.size else np.zeros_like(at)


def boundary_increments(
    c_start: np.ndarray, c_end: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-instance counter increments from boundary readings.

    Returns ``(totals, degenerate, denom)``: the raw increment clamped
    at zero, the mask of non-positive raw increments, and the fraction
    denominator (raw clamped at 1e-12).  This is the *single* clamp
    site — the resident :func:`fold_samples` and the streaming
    accumulator (:mod:`repro.folding.stream`) both derive their
    totals/degenerate flags here, so incremental accumulation cannot
    drift from the whole-trace computation.
    """
    raw = c_end - c_start
    return np.maximum(raw, 0.0), raw <= 0.0, np.maximum(raw, 1e-12)


def count_in_instances(table: SampleTable, instances: FoldInstances) -> int:
    """Number of samples of *table* that fall inside any instance.

    This is the sample mass :func:`fold_samples` must conserve: every
    in-instance sample appears in the folded output exactly once, and
    no out-of-instance sample does.  The validator
    (:mod:`repro.validate.invariants`) checks the two agree.
    """
    _, inside = _inside_mask(table.time_ns, instances.starts_ns, instances.ends_ns)
    return int(inside.sum())


@dataclass
class FoldedSamples:
    """Samples of all instances on the common normalized axis."""

    instances: FoldInstances
    #: subset of the trace's sample table that falls inside instances
    table: SampleTable
    sigma: np.ndarray
    instance: np.ndarray
    #: counter name -> per-sample cumulative fraction in [0, 1]
    fractions: dict[str, np.ndarray] = field(default_factory=dict)
    #: counter name -> per-instance total increment (clamped at 0; see
    #: ``degenerate`` for the instances whose raw increment was not
    #: positive)
    totals: dict[str, np.ndarray] = field(default_factory=dict)
    #: counter name -> per-instance mask of degenerate (non-positive)
    #: raw increments — a flat counter, or boundary-interpolation noise
    degenerate: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return int(self.sigma.size)

    def counter_total_mean(self, name: str) -> float:
        """Mean per-instance increment of a counter."""
        return float(self.totals[name].mean())

    def select(self, mask: np.ndarray) -> "FoldedSamples":
        return FoldedSamples(
            instances=self.instances,
            table=self.table.select(mask),
            sigma=self.sigma[mask],
            instance=self.instance[mask],
            fractions={k: v[mask] for k, v in self.fractions.items()},
            totals=self.totals,
            degenerate=self.degenerate,
        )


def fold_samples(
    table: SampleTable,
    instances: FoldInstances,
    warp=None,
) -> FoldedSamples:
    """Project *table*'s samples onto the folded axis of *instances*.

    Samples outside every instance (setup, finalization, pruned
    instances) are dropped.

    Parameters
    ----------
    warp:
        Optional :class:`repro.folding.align.TimeWarp` replacing the
        linear per-instance projection with a piecewise control-point
        alignment.
    """
    t = table.time_ns
    starts = instances.starts_ns
    ends = instances.ends_ns

    idx, inside = _inside_mask(t, starts, ends)
    idx = idx[inside]
    kept = table.select(inside)
    tk = kept.time_ns
    if warp is None:
        sigma = (tk - starts[idx]) / (ends[idx] - starts[idx])
    else:
        if warp.n_instances != instances.n:
            raise ValueError(
                f"warp covers {warp.n_instances} instances, fold has {instances.n}"
            )
        sigma = np.empty(tk.shape, dtype=np.float64)
        for i in range(instances.n):
            sel = idx == i
            if sel.any():
                sigma[sel] = warp.sigma(i, tk[sel])

    # Interpolate cumulative counters at instance boundaries from the
    # full (unfiltered) sample stream, then normalize per instance.
    # A counter that did not move over an instance (or moved backwards
    # under interpolation noise) has no cumulative direction: its raw
    # increment is clamped to zero in ``totals`` — the same clamp the
    # fraction denominator applies — and the instance is flagged in
    # ``degenerate`` so downstream consumers can tell "genuinely zero
    # rate" from "tiny but real".
    fractions: dict[str, np.ndarray] = {}
    totals: dict[str, np.ndarray] = {}
    degenerate: dict[str, np.ndarray] = {}
    for name in SAMPLE_COUNTERS:
        series = table.column(name)
        c_start = boundary_values(t, series, starts)
        c_end = boundary_values(t, series, ends)
        totals[name], degenerate[name], denom = boundary_increments(
            c_start, c_end
        )
        value = kept.column(name)
        frac = (value - c_start[idx]) / denom[idx]
        fractions[name] = np.clip(frac, 0.0, 1.0)

    return FoldedSamples(
        instances=instances,
        table=kept,
        sigma=sigma,
        instance=idx,
        fractions=fractions,
        totals=totals,
        degenerate=degenerate,
    )
