"""Representative-instance selection: cluster signatures, pick medoids.

Large workloads repeat the same region hundreds of times; folding every
instance pays the full per-sample cost each time even though most
instances are statistically interchangeable.  This module clusters the
per-instance signatures of :mod:`repro.folding.signatures` with a
deterministic seeded k-means, picks one **medoid** per cluster (a real
instance, not a synthetic centroid), and records each cluster's size as
the representative's weight.  The extrapolated fold
(:mod:`repro.folding.extrapolate`) then folds only the medoids and
reweights them, so the expensive per-sample work scales with ``budget``
instead of ``n_instances``.

Determinism contract: identical ``(features, budget, seed)`` always
yields identical representatives — k-means++ seeding draws from
``np.random.default_rng(seed)``, every argmin breaks ties toward the
lowest index, and an emptied cluster is reseeded to the farthest point.
A budget covering every instance degenerates to the identity selection
(one singleton cluster per instance, all weights 1), which is what makes
``rep_budget = n_instances`` bit-identical to the exact fold downstream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.extrae.trace import Trace
from repro.folding.detect import (
    FoldInstances,
    instances_from_iterations,
    instances_from_regions,
)
from repro.folding.signatures import InstanceSignatures, instance_signatures

__all__ = ["Representatives", "cluster_signatures", "select_representatives"]

_KMEANS_MAX_ITER = 64


@dataclass(frozen=True)
class Representatives:
    """A weighted subset of fold instances standing in for all of them."""

    instances: FoldInstances
    #: instance indices of the chosen medoids, ascending
    indices: np.ndarray
    #: cluster id of every instance, ``labels[indices[k]] == k``
    labels: np.ndarray
    #: instances represented by each medoid (cluster sizes), ``float64``
    weights: np.ndarray
    budget: int
    seed: int

    @property
    def n_clusters(self) -> int:
        return int(self.indices.size)

    @property
    def n_instances(self) -> int:
        return int(self.labels.size)

    @property
    def is_exhaustive(self) -> bool:
        """True when every instance is its own representative."""
        return self.n_clusters == self.n_instances

    def selected(self) -> FoldInstances:
        """The medoid instances as a foldable :class:`FoldInstances`."""
        intervals = tuple(self.instances.intervals[i] for i in self.indices)
        return FoldInstances(self.instances.name, intervals)

    def summary(self) -> str:
        return (
            f"{self.n_clusters} representatives / {self.n_instances} instances"
            f" (budget {self.budget}, seed {self.seed})"
        )


def _kmeans(
    points: np.ndarray, k: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Seeded Lloyd k-means with k-means++ init; returns (labels, centers)."""
    n = points.shape[0]
    rng = np.random.default_rng(seed)

    centers = np.empty((k, points.shape[1]), dtype=np.float64)
    centers[0] = points[int(rng.integers(n))]
    d2 = np.sum((points - centers[0]) ** 2, axis=1)
    for j in range(1, k):
        total = float(d2.sum())
        if total <= 0.0:
            # all remaining points coincide with a center; spread
            # deterministically over distinct rows
            centers[j] = points[j % n]
        else:
            pick = int(np.searchsorted(np.cumsum(d2), rng.random() * total))
            centers[j] = points[min(pick, n - 1)]
        d2 = np.minimum(d2, np.sum((points - centers[j]) ** 2, axis=1))

    labels = np.zeros(n, dtype=np.int64)
    for _ in range(_KMEANS_MAX_ITER):
        dists = np.sum(
            (points[:, None, :] - centers[None, :, :]) ** 2, axis=2
        )
        new_labels = np.argmin(dists, axis=1)
        for j in range(k):
            members = new_labels == j
            if members.any():
                centers[j] = points[members].mean(axis=0)
            else:
                # reseed an emptied cluster to the globally farthest point
                far = int(np.argmax(np.min(dists, axis=1)))
                centers[j] = points[far]
                new_labels[far] = j
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return labels, centers


def cluster_signatures(
    signatures: InstanceSignatures, budget: int, seed: int = 0
) -> Representatives:
    """Cluster *signatures* into ``min(budget, n)`` groups, pick medoids."""
    if budget < 1:
        raise ValueError(f"rep budget must be >= 1, got {budget}")
    n = signatures.n
    k = min(budget, n)

    if k == n:
        # exhaustive: identity selection, exact-fold equivalent downstream
        return Representatives(
            instances=signatures.instances,
            indices=np.arange(n, dtype=np.int64),
            labels=np.arange(n, dtype=np.int64),
            weights=np.ones(n, dtype=np.float64),
            budget=budget,
            seed=seed,
        )

    points = signatures.normalized()
    labels, centers = _kmeans(points, k, seed)

    indices = np.empty(k, dtype=np.int64)
    for j in range(k):
        members = np.flatnonzero(labels == j)
        d2 = np.sum((points[members] - centers[j]) ** 2, axis=1)
        indices[j] = members[int(np.argmin(d2))]

    # relabel clusters so medoid indices are ascending: cluster ids are
    # then stable under permutation of the k-means internals
    order = np.argsort(indices, kind="stable")
    indices = indices[order]
    remap = np.empty(k, dtype=np.int64)
    remap[order] = np.arange(k)
    labels = remap[labels]
    weights = np.bincount(labels, minlength=k).astype(np.float64)

    return Representatives(
        instances=signatures.instances,
        indices=indices,
        labels=labels,
        weights=weights,
        budget=budget,
        seed=seed,
    )


def derive_instances(
    trace: Trace,
    region: str | None = None,
    prune_tolerance: float | None = 0.5,
) -> FoldInstances:
    """Instance boundaries exactly as the exact fold derives them.

    Mirrors :meth:`repro.folding.plan.FoldPlan.from_trace` so a
    representative selection and the exact fold it stands in for always
    agree on the instance set.
    """
    if region is not None:
        instances = instances_from_regions(trace, region)
    else:
        instances = instances_from_iterations(trace)
    if prune_tolerance is not None and instances.n >= 3:
        instances = instances.prune_outliers(prune_tolerance)
    return instances


def select_representatives(
    trace: Trace,
    region: str | None = None,
    budget: int = 8,
    *,
    instances: FoldInstances | None = None,
    seed: int = 0,
    prune_tolerance: float | None = 0.5,
) -> Representatives:
    """Pick ``budget`` weighted representative instances of *trace*.

    Signature computation and clustering are both O(instances) on top of
    one vectorized pass over the sample table — cheap relative to the
    fold they amortize.
    """
    if budget < 1:
        raise ValueError(f"rep budget must be >= 1, got {budget}")
    if instances is None:
        instances = derive_instances(trace, region, prune_tolerance)
    if instances.n == 0:
        raise ValueError("trace has no fold instances to represent")
    if budget >= instances.n:
        # exhaustive: the identity selection needs no features at all
        return cluster_signatures(
            InstanceSignatures(
                instances=instances,
                feature_names=(),
                features=np.empty((instances.n, 0)),
            ),
            budget,
            seed,
        )
    signatures = instance_signatures(trace, instances)
    return cluster_signatures(signatures, budget, seed)
