"""Comparing folded reports across runs, ranks or configurations.

Once runs fold onto a common normalized axis, two executions become
directly comparable point by point — the natural follow-up analysis
(compare before/after an optimization, compare ranks of a job, compare
machines).  This module aligns two folded reports and quantifies their
differences per phase and per counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.phases import IterationPhases
from repro.folding.report import FoldedReport
from repro.util.tables import format_table

__all__ = ["FoldedComparison", "compare_reports"]


@dataclass(frozen=True)
class PhaseDelta:
    """One phase's differences between two runs."""

    label: str
    duration_a_ns: float
    duration_b_ns: float
    mips_a: float
    mips_b: float

    @property
    def duration_ratio(self) -> float:
        return self.duration_b_ns / self.duration_a_ns if self.duration_a_ns else 0.0

    @property
    def speedup(self) -> float:
        """>1 means run B finishes this phase faster."""
        return self.duration_a_ns / self.duration_b_ns if self.duration_b_ns else 0.0


@dataclass
class FoldedComparison:
    """Alignment of two folded reports."""

    name_a: str
    name_b: str
    duration_a_ns: float
    duration_b_ns: float
    #: pointwise MIPS ratio B/A on the common σ grid
    mips_ratio: np.ndarray
    phase_deltas: list[PhaseDelta] = field(default_factory=list)

    @property
    def overall_speedup(self) -> float:
        return self.duration_a_ns / self.duration_b_ns if self.duration_b_ns else 0.0

    def max_divergence(self) -> float:
        """Largest pointwise relative MIPS divergence."""
        return float(np.abs(self.mips_ratio - 1.0).max()) if self.mips_ratio.size else 0.0

    def to_table(self) -> str:
        rows = [
            (d.label, d.duration_a_ns / 1e6, d.duration_b_ns / 1e6,
             d.speedup, d.mips_a, d.mips_b)
            for d in self.phase_deltas
        ]
        text = format_table(
            ["phase", f"{self.name_a} ms", f"{self.name_b} ms",
             "speedup", f"{self.name_a} MIPS", f"{self.name_b} MIPS"],
            rows, floatfmt=",.2f",
            title=f"Folded comparison: {self.name_a} vs {self.name_b}",
        )
        text += (
            f"\n\noverall iteration speedup ({self.name_b} vs {self.name_a}): "
            f"{self.overall_speedup:.3f}x; "
            f"max pointwise MIPS divergence: {self.max_divergence() * 100:.1f}%"
        )
        return text


def compare_reports(
    report_a: FoldedReport,
    report_b: FoldedReport,
    phases_a: IterationPhases | None = None,
    phases_b: IterationPhases | None = None,
    name_a: str = "A",
    name_b: str = "B",
) -> FoldedComparison:
    """Align two folded reports on the σ axis and diff them.

    The pointwise MIPS ratio compares the curves on the common σ grid
    (a *shape* comparison).  The per-phase table matches phases **by
    label** using each run's *own* segmentation — when a phase speeds
    up, every later phase shifts in σ, so per-run windows are essential
    for a fair per-phase diff.

    Parameters
    ----------
    report_a, report_b:
        The runs to compare (any workload, same instrumentation).
    phases_a, phases_b:
        Each run's phase windows; ``phases_b`` defaults to
        ``phases_a`` (exact only when the phase layout is unchanged).
        With both ``None`` only the pointwise comparison is produced.
    """
    ca, cb = report_a.counters, report_b.counters
    grid = ca.sigma
    mips_a = ca.mips()
    mips_b = np.interp(grid, cb.sigma, cb.mips())
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(mips_a > 0, mips_b / mips_a, 1.0)

    comparison = FoldedComparison(
        name_a=name_a,
        name_b=name_b,
        duration_a_ns=report_a.instances.mean_duration_ns,
        duration_b_ns=report_b.instances.mean_duration_ns,
        mips_ratio=ratio,
    )
    if phases_b is None:
        phases_b = phases_a
    if phases_a is not None:
        by_label_b = {p.label: p for p in phases_b}
        for pa in phases_a:
            pb = by_label_b.get(pa.label)
            if pb is None:
                continue
            sel_a = (ca.sigma >= pa.lo) & (ca.sigma < pa.hi)
            sel_b = (cb.sigma >= pb.lo) & (cb.sigma < pb.hi)
            if not sel_a.any() or not sel_b.any():
                continue
            comparison.phase_deltas.append(
                PhaseDelta(
                    label=pa.label,
                    duration_a_ns=pa.width * comparison.duration_a_ns,
                    duration_b_ns=pb.width * comparison.duration_b_ns,
                    mips_a=float(ca.mips()[sel_a].mean()),
                    mips_b=float(cb.mips()[sel_b].mean()),
                )
            )
    return comparison
