"""Figure-1 assembly: the paper's complete evaluation product.

:func:`build_figure1` runs every §III analysis over a folded HPCG
report and returns a :class:`Figure1` bundle holding the three panels'
data plus the derived quantitative results (phase table, bandwidth
table, object legend, read-only check, MIPS/IPC).  The benchmark
harness prints these next to the published values.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.bandwidth import phase_bandwidth_MBps
from repro.analysis.metrics import RunMetrics, run_metrics
from repro.analysis.phases import IterationPhases, segment_iteration
from repro.analysis.sweeps import Sweep, detect_sweeps
from repro.folding.report import FoldedReport
from repro.simproc.calibration import PAPER_TARGETS
from repro.util.tables import format_table
from repro.workloads.hpcg.problem import MAP_GROUP_NAME, MATRIX_GROUP_NAME

__all__ = ["Figure1", "build_figure1"]


@dataclass
class Figure1:
    """Everything Figure 1 shows, as data."""

    report: FoldedReport
    phases: IterationPhases
    #: phase label -> detected sweeps of the matrix structure
    sweeps: dict[str, list[Sweep]]
    #: phase label -> effective bandwidth (MB/s)
    bandwidth_MBps: dict[str, float]
    metrics: RunMetrics
    #: object legend: name -> user MB (the figure's two big groups)
    legend: dict[str, float]
    #: sampled stores that hit the matrix (lower) address region
    stores_in_matrix_region: int
    matrix_span: tuple[int, int] | None = None

    # ------------------------------------------------------------------
    def bandwidth_table(self) -> str:
        rows = []
        paper = {
            "a1": PAPER_TARGETS["bandwidth_a1_MBps"],
            "a2": PAPER_TARGETS["bandwidth_a2_MBps"],
            "B": PAPER_TARGETS["bandwidth_B_MBps"],
        }
        for label in ("a1", "a2", "B"):
            if label in self.bandwidth_MBps:
                measured = self.bandwidth_MBps[label]
                rows.append(
                    (label, measured, paper[label], measured / paper[label])
                )
        return format_table(
            ["phase", "measured MB/s", "paper MB/s", "ratio"],
            rows,
            title="E4 — effective bandwidth while traversing the matrix structure",
        )

    def legend_table(self) -> str:
        rows = [
            (
                MATRIX_GROUP_NAME,
                self.legend.get(MATRIX_GROUP_NAME, 0.0),
                PAPER_TARGETS["object_group_124_MB"],
            ),
            (
                MAP_GROUP_NAME,
                self.legend.get(MAP_GROUP_NAME, 0.0),
                PAPER_TARGETS["object_group_205_MB"],
            ),
        ]
        return format_table(
            ["group", "measured MB", "paper MB"],
            rows,
            title="E6 — allocation groups (Figure 1 legend)",
        )

    def phase_table(self) -> str:
        rows = [
            (p.label, p.region, p.lo, p.hi, p.width) for p in self.phases
        ]
        return format_table(
            ["phase", "region", "sigma lo", "sigma hi", "width"],
            rows,
            floatfmt=".4f",
            title="E1 — folded phase windows",
        )

    def render(self) -> str:
        lines = [
            self.report.summary(),
            "",
            self.phase_table(),
            "",
            self.bandwidth_table(),
            "",
            self.legend_table(),
            "",
            f"MIPS (mean/max): {self.metrics.mips_mean:.0f} / "
            f"{self.metrics.mips_max:.0f}  (paper cap: "
            f"{PAPER_TARGETS['mips_cap']:.0f}, IPC "
            f"{PAPER_TARGETS['ipc_at_cap']:.1f} at 2.5 GHz)",
            f"IPC mean: {self.metrics.ipc_mean:.2f}",
            f"sampled stores in the matrix (lower) region during the "
            f"execution phase: {self.stores_in_matrix_region} "
            f"(paper: none — data written in setup)",
        ]
        return "\n".join(lines)

    def export(self, directory: str | Path) -> list[Path]:
        """Write the gnuplot panels plus the rendered summary."""
        directory = Path(directory)
        written = self.report.export_gnuplot(directory)
        summary = directory / "figure1.txt"
        summary.write_text(self.render() + "\n")
        written.append(summary)
        return written


def build_figure1(report: FoldedReport) -> Figure1:
    """Run the full §III analysis over a folded HPCG report."""
    phases = segment_iteration(report.trace, report.instances, report.samples)

    # Annotate the address panel with the layout bands the paper shows.
    annotations = report.trace.metadata.get("annotations", {})
    matrix_span = None
    for label, (lo, hi) in annotations.items():
        if label == "matrix_span":
            matrix_span = (int(lo), int(hi))
        else:
            report.addresses.annotate(label, int(lo), int(hi))

    # Sweep detection over the matrix structure per SYMGS/SPMV phase.
    sweeps: dict[str, list[Sweep]] = {}
    try:
        matrix_mask = report.addresses.object_samples(MATRIX_GROUP_NAME)
    except KeyError:
        matrix_mask = None
    if matrix_mask is not None:
        for label in ("a1", "a2", "d1", "d2", "B", "E"):
            try:
                p = phases.get(label)
            except KeyError:
                continue
            sweeps[label] = detect_sweeps(
                report.addresses, matrix_mask, p.lo, p.hi
            )

    # The paper's bandwidth approximation for a1, a2 and B.
    bandwidth: dict[str, float] = {}
    if matrix_mask is not None:
        for label in ("a1", "a2", "B", "d1", "d2", "E"):
            try:
                p = phases.get(label)
                bandwidth[label] = phase_bandwidth_MBps(
                    report, p, MATRIX_GROUP_NAME
                )
            except (KeyError, ValueError):
                continue

    legend = {
        rec.name: rec.bytes_user / 1e6
        for rec in report.registry.records
        if rec.name in (MATRIX_GROUP_NAME, MAP_GROUP_NAME)
    }

    stores_in_matrix = 0
    if matrix_span is not None:
        stores_in_matrix = report.addresses.stores_in_range(*matrix_span)

    return Figure1(
        report=report,
        phases=phases,
        sweeps=sweeps,
        bandwidth_MBps=bandwidth,
        metrics=run_metrics(report),
        legend=legend,
        stores_in_matrix_region=stores_in_matrix,
        matrix_span=matrix_span,
    )
