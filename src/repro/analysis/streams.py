"""Dominant data streams and their temporal evolution.

The paper's conclusion claims: "The exploration included scan of the
memory access patterns from a time perspective and the identification
of the **most dominant data streams and their temporal evolution along
computing regions**."  This module implements that identification on a
folded report: per data object, the folded sample-rate curve (its
temporal evolution over the iteration), its traffic share, its dominant
data source and per-phase activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.phases import IterationPhases
from repro.folding.report import FoldedReport
from repro.extrae.memalloc import ObjectRecord
from repro.memsim.datasource import DataSource
from repro.memsim.patterns import MemOp
from repro.util.tables import format_table

__all__ = ["DataStream", "StreamReport", "identify_streams"]


@dataclass
class DataStream:
    """One data object's folded activity profile.

    Attributes
    ----------
    record:
        The data object.
    share:
        Fraction of all folded samples that hit this object.
    sigma_grid / activity:
        Folded sample-rate curve (samples per unit σ, normalized so it
        integrates to ``share``): the stream's temporal evolution.
    dominant_source:
        The hierarchy level serving most of its sampled accesses.
    load_fraction:
        Loads / (loads + stores) among its samples.
    phase_share:
        Phase label → fraction of the object's samples inside it.
    """

    record: ObjectRecord
    share: float
    sigma_grid: np.ndarray
    activity: np.ndarray
    dominant_source: DataSource
    load_fraction: float
    mean_latency: float
    phase_share: dict[str, float] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.record.name

    def active_window(self, level: float = 0.25) -> tuple[float, float]:
        """σ range where the stream's activity exceeds *level* × its peak."""
        peak = self.activity.max()
        if peak <= 0:
            return (0.0, 0.0)
        hot = np.nonzero(self.activity >= level * peak)[0]
        return float(self.sigma_grid[hot[0]]), float(self.sigma_grid[hot[-1]])

    def is_bursty(self, threshold: float = 3.0) -> bool:
        """Peak-to-mean activity ratio above *threshold* (phase-local
        streams like the halo buffers) vs. steady streams (the matrix)."""
        mean = self.activity.mean()
        return bool(mean > 0 and self.activity.max() / mean > threshold)


@dataclass
class StreamReport:
    """All identified streams, dominant first."""

    streams: list[DataStream]
    n_samples: int

    def __iter__(self):
        return iter(self.streams)

    def __len__(self) -> int:
        return len(self.streams)

    def dominant(self, n: int = 5) -> list[DataStream]:
        return self.streams[:n]

    def stream(self, name: str) -> DataStream:
        for s in self.streams:
            if s.name == name:
                return s
        raise KeyError(f"no stream named {name!r}")

    def to_table(self, top: int = 10) -> str:
        rows = []
        for s in self.streams[:top]:
            lo, hi = s.active_window()
            rows.append(
                (
                    s.name,
                    s.record.bytes_user / 1e6,
                    s.share * 100.0,
                    s.dominant_source.pretty,
                    s.load_fraction * 100.0,
                    f"[{lo:.2f}, {hi:.2f}]",
                    "bursty" if s.is_bursty() else "steady",
                )
            )
        return format_table(
            ["stream", "MB", "traffic %", "source", "loads %",
             "active sigma", "shape"],
            rows,
            title="Dominant data streams (folded)",
        )


def identify_streams(
    report: FoldedReport,
    phases: IterationPhases | None = None,
    grid_points: int = 101,
    min_samples: int = 10,
) -> StreamReport:
    """Identify the data streams of a folded report.

    Parameters
    ----------
    report:
        The folded report (addresses already resolved).
    phases:
        Optional phase windows for the per-phase activity split.
    grid_points:
        Resolution of the activity curves.
    min_samples:
        Objects with fewer folded samples are dropped.
    """
    a = report.addresses
    n = a.n
    if n == 0:
        return StreamReport(streams=[], n_samples=0)
    grid = np.linspace(0.0, 1.0, grid_points)
    edges = np.linspace(0.0, 1.0, grid_points + 1)

    streams: list[DataStream] = []
    for idx in np.unique(a.object_index):
        if idx < 0:
            continue
        mask = a.object_index == idx
        count = int(mask.sum())
        if count < min_samples:
            continue
        record = report.registry.records[int(idx)]
        sigma = a.sigma[mask]
        hist, _ = np.histogram(sigma, bins=edges)
        # Normalize: integral over σ equals the traffic share.
        share = count / n
        activity = hist.astype(np.float64) * grid_points / n

        sources = a.source[mask]
        codes, counts = np.unique(sources, return_counts=True)
        dominant = DataSource(int(codes[np.argmax(counts)]))
        loads = int((a.op[mask] == int(MemOp.LOAD)).sum())

        phase_share: dict[str, float] = {}
        if phases is not None:
            for p in phases:
                inside = int(((sigma >= p.lo) & (sigma < p.hi)).sum())
                phase_share[p.label] = inside / count
        streams.append(
            DataStream(
                record=record,
                share=share,
                sigma_grid=grid,
                activity=activity,
                dominant_source=dominant,
                load_fraction=loads / count,
                mean_latency=float(a.latency[mask].mean()),
                phase_share=phase_share,
            )
        )
    streams.sort(key=lambda s: s.share, reverse=True)
    return StreamReport(streams=streams, n_samples=n)
