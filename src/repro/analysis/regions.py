"""Per-region progression reports.

§II of the paper: the integration helps "the exploration of the
application performance, its progression on code regions and their
access to the address space".  Beyond the single folded iteration,
this module folds *each instrumented region over its own occurrences*
and summarizes, per region: achieved MIPS, miss rates, the address
footprint touched, the load/store mix and the sweep direction — the
per-code-region progression table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.sweeps import detect_sweeps, split_address_bands
from repro.extrae.trace import Trace
from repro.folding.address import fold_addresses
from repro.folding.detect import instances_from_regions
from repro.folding.fold import fold_samples
from repro.folding.model import fold_counters
from repro.memsim.patterns import MemOp
from repro.objects.registry import DataObjectRegistry
from repro.util.tables import format_table

__all__ = ["RegionProgress", "RegionReport", "region_progress"]


@dataclass(frozen=True)
class RegionProgress:
    """One region's folded summary across its occurrences."""

    name: str
    occurrences: int
    mean_duration_ns: float
    n_samples: int
    mips_mean: float
    l3_miss_per_instr: float
    footprint_bytes: int
    load_fraction: float
    dominant_direction: int  # +1 / -1 / 0

    @property
    def direction_name(self) -> str:
        return {1: "forward", -1: "backward", 0: "mixed"}[self.dominant_direction]


@dataclass
class RegionReport:
    """Progression across all analysed regions."""

    regions: list[RegionProgress] = field(default_factory=list)

    def __iter__(self):
        return iter(self.regions)

    def __len__(self) -> int:
        return len(self.regions)

    def region(self, name: str) -> RegionProgress:
        for r in self.regions:
            if r.name == name:
                return r
        raise KeyError(f"no region named {name!r}")

    def to_table(self) -> str:
        rows = [
            (
                r.name,
                r.occurrences,
                r.mean_duration_ns / 1e6,
                r.mips_mean,
                r.l3_miss_per_instr,
                r.footprint_bytes / 1e6,
                r.load_fraction * 100.0,
                r.direction_name,
            )
            for r in self.regions
        ]
        return format_table(
            ["region", "occurrences", "mean ms", "MIPS", "L3 miss/instr",
             "footprint MB", "loads %", "sweep"],
            rows, floatfmt=",.3f",
            title="Progression on code regions",
        )


def region_progress(
    trace: Trace,
    regions: tuple[str, ...] = (
        "ComputeSYMGS_ref",
        "ComputeSPMV_ref",
        "ComputeDotProduct_ref",
        "ComputeWAXPBY_ref",
    ),
    registry: DataObjectRegistry | None = None,
    min_samples: int = 10,
) -> RegionReport:
    """Fold each region over its own occurrences and summarize it.

    Regions with fewer than *min_samples* folded samples are skipped
    (their occurrences are too short for the sampling period).
    """
    registry = registry if registry is not None else DataObjectRegistry(trace.objects)
    table = trace.sample_table()
    report = RegionReport()
    for name in regions:
        try:
            instances = instances_from_regions(trace, name)
        except ValueError:
            continue
        folded = fold_samples(table, instances)
        if folded.n < min_samples:
            continue
        counters = fold_counters(folded)
        addresses = fold_addresses(folded, registry)
        ops = folded.table.op
        loads = int((ops == int(MemOp.LOAD)).sum())
        addr = folded.table.address
        # Footprint: sampled pages touched (robust to the heap/mmap gap
        # a simple max-min span would swallow).
        pages = np.unique(addr >> np.uint64(12))
        footprint = int(pages.size) * 4096
        # Detect direction on the dominant address band: the raw
        # heap/mmap mixture drowns the correlation signal.  Coarse bins
        # keep the per-bin slope span large relative to the variance the
        # mixed MG levels contribute, and a low correlation floor is
        # fine for a direction *summary*.
        bands = split_address_bands(addresses)
        sweeps = (
            detect_sweeps(addresses, mask=bands[0], bins=8,
                          min_bin_samples=4, min_correlation=0.10)
            if bands
            else []
        )
        fwd = sum(s.n_samples for s in sweeps if s.direction == 1)
        bwd = sum(s.n_samples for s in sweeps if s.direction == -1)
        # A region is directional only when one direction dominates;
        # SYMGS (forward + backward sweeps folded together) is mixed.
        direction = 0
        if fwd + bwd > 0:
            minority = min(fwd, bwd) / max(fwd, bwd)
            if minority < 0.33:
                direction = 1 if fwd > bwd else -1
        report.regions.append(
            RegionProgress(
                name=name,
                occurrences=instances.n,
                mean_duration_ns=instances.mean_duration_ns,
                n_samples=folded.n,
                mips_mean=float(counters.mips().mean()),
                l3_miss_per_instr=float(
                    counters.per_instruction("l3_misses").mean()
                ),
                footprint_bytes=footprint,
                load_fraction=loads / folded.n,
                dominant_direction=direction,
            )
        )
    report.regions.sort(key=lambda r: r.mean_duration_ns * r.occurrences,
                        reverse=True)
    return report
