"""Analyses over folded reports: the paper's §III evaluation toolkit.

* :mod:`repro.analysis.phases` — segment a folded CG iteration into the
  paper's phases A (a1/a2), B, C, D (d1/d2), E from the instrumentation
  events and sample labels;
* :mod:`repro.analysis.sweeps` — detect address sweeps (direction,
  extent) in the folded address view;
* :mod:`repro.analysis.bandwidth` — the paper's effective-bandwidth
  approximation (structure bytes / phase duration);
* :mod:`repro.analysis.metrics` — MIPS/IPC/miss-rate summaries;
* :mod:`repro.analysis.figures` — assemble everything into the
  Figure-1 data product the benchmarks print and compare against the
  published numbers;
* :mod:`repro.analysis.streams` — the conclusion's "most dominant data
  streams and their temporal evolution along computing regions";
* :mod:`repro.analysis.hybrid` — the closing suggestion turned into a
  tool: hybrid-memory placement advice from read/write asymmetry;
* :mod:`repro.analysis.reuse` — sampled reuse-distance profiles (the
  introduction's locality use case);
* :mod:`repro.analysis.ranks` — cross-rank aggregation over a rank-set
  run: pooled per-rank folds, the instance-weighted cluster report and
  per-rank imbalance metrics.
"""

from repro.analysis.bandwidth import phase_bandwidth_MBps
from repro.analysis.compare import FoldedComparison, compare_reports
from repro.analysis.figures import Figure1, build_figure1
from repro.analysis.latency import (
    LatencyBreakdown,
    latency_breakdown,
    top_cost_samples,
)
from repro.analysis.hybrid import (
    HybridMemoryModel,
    PlacementPlan,
    advise_placement,
)
from repro.analysis.metrics import RunMetrics, run_metrics
from repro.analysis.phases import IterationPhases, Phase, segment_iteration
from repro.analysis.ranks import (
    ClusterReport,
    Imbalance,
    RankFold,
    RankStats,
    build_cluster_report,
    fold_ranks,
)
from repro.analysis.regions import RegionReport, region_progress
from repro.analysis.roofline import MachineRoof, RooflineReport, roofline
from repro.analysis.reuse import ReuseProfile, sampled_reuse_profile
from repro.analysis.streams import DataStream, StreamReport, identify_streams
from repro.analysis.sweeps import Sweep, detect_sweeps

__all__ = [
    "ClusterReport",
    "DataStream",
    "Imbalance",
    "RankFold",
    "RankStats",
    "FoldedComparison",
    "LatencyBreakdown",
    "Figure1",
    "HybridMemoryModel",
    "IterationPhases",
    "Phase",
    "MachineRoof",
    "RegionReport",
    "RooflineReport",
    "PlacementPlan",
    "ReuseProfile",
    "RunMetrics",
    "StreamReport",
    "Sweep",
    "advise_placement",
    "build_cluster_report",
    "build_figure1",
    "fold_ranks",
    "compare_reports",
    "latency_breakdown",
    "top_cost_samples",
    "detect_sweeps",
    "identify_streams",
    "phase_bandwidth_MBps",
    "region_progress",
    "roofline",
    "run_metrics",
    "sampled_reuse_profile",
    "segment_iteration",
]
