"""Cross-rank aggregation: the cluster view over a rank-set run.

The paper folds *one representative task* of the 24-core HPCG run.
This module adds what the single-task view cannot show — how the other
23 behave relative to it:

* :func:`fold_ranks` — fold **every** rank's trace through the PR-3
  fast path (one :class:`~repro.folding.plan.FoldPlan` per rank, the
  content-addressed :class:`~repro.folding.cache.FoldCache` honored),
  pooled ``fold_sweep``-style over the spill files so each worker loads
  its rank's trace itself and only a compact :class:`RankFold` crosses
  back — the parent never holds any rank's sample table;
* :func:`build_cluster_report` — merge the per-rank folded counter
  curves into an instance-weighted cluster curve
  (:func:`repro.folding.model.merge_counters`) and derive per-rank
  imbalance metrics: sample/latency/bandwidth spread and per-region
  min/median/max time across ranks;
* :class:`ClusterReport` — the cluster-level Figure-1 variant: the
  per-rank table, the imbalance tables and the merged MIPS/IPC
  headline, rendered next to the representative rank the paper shows.
"""

from __future__ import annotations

import logging
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.extrae.trace import Trace
from repro.folding.model import FoldedCounters, merge_counters
from repro.folding.report import fold_trace
from repro.util.tables import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.parallel.ranks import RankResult

logger = logging.getLogger("repro.parallel")

__all__ = [
    "ClusterReport",
    "Imbalance",
    "RankFold",
    "RankStats",
    "build_cluster_report",
    "fold_ranks",
    "rank_imbalance",
]


@dataclass(frozen=True)
class RankStats:
    """Scalar health metrics of one rank's trace (computed worker-side)."""

    n_samples: int
    duration_ns: float
    latency_mean: float
    latency_p95: float
    #: estimated DRAM traffic (last cumulative ``dram_lines`` reading × 64B)
    dram_bytes: float
    #: dram_bytes / duration, in MB/s
    bandwidth_MBps: float
    #: region name -> total time spent inside the region (ns)
    region_time_ns: dict[str, float] = field(default_factory=dict)
    #: region name -> samples taken inside the region
    region_samples: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class RankFold:
    """One rank's folded result, distilled for cross-rank work.

    Carries the folded counter curves (grid-sized arrays) and scalar
    statistics — never the sample table — so shipping it from a pool
    worker costs KBs, not the trace's MBs.
    """

    rank: int
    seed: int
    digest: str
    n_instances: int
    mean_instance_ns: float
    n_folded_samples: int
    counters: FoldedCounters
    stats: RankStats


@dataclass(frozen=True)
class Imbalance:
    """Spread of one metric across ranks."""

    metric: str
    min: float
    median: float
    max: float
    mean: float

    @property
    def imbalance_factor(self) -> float:
        """``max / mean`` — the classic MPI load-imbalance factor
        (1.0 = perfectly balanced)."""
        return self.max / self.mean if self.mean else float("nan")

    @property
    def spread(self) -> float:
        """``(max - min) / median`` — relative peak-to-peak spread."""
        return (self.max - self.min) / self.median if self.median else float("nan")


def rank_imbalance(values: Sequence[float], metric: str) -> Imbalance:
    """Min/median/max/mean of one per-rank metric."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError(f"no per-rank values for {metric!r}")
    return Imbalance(
        metric=metric,
        min=float(arr.min()),
        median=float(np.median(arr)),
        max=float(arr.max()),
        mean=float(arr.mean()),
    )


def compute_rank_stats(trace: Trace) -> RankStats:
    """Scalar per-rank metrics straight off a trace (indexed queries)."""
    table = trace.sample_table()
    n = len(table)
    latency = table.latency
    duration = trace.duration_ns()
    dram_bytes = 0.0
    if n:
        # Counters columns are cumulative readings; the last time-sorted
        # reading approximates the run total.
        dram_bytes = float(table.column("dram_lines")[-1]) * 64.0
    index = trace.index()
    region_time: dict[str, float] = {}
    region_samples: dict[str, int] = {}
    for name in index.events.region_names:
        intervals = index.events.region_intervals(name)
        region_time[name] = float(sum(t1 - t0 for t0, t1 in intervals))
        count = 0
        for t0, t1 in intervals:
            sl = index.samples.time_slice(t0, t1)
            count += sl.stop - sl.start
        region_samples[name] = count
    return RankStats(
        n_samples=n,
        duration_ns=duration,
        latency_mean=float(latency.mean()) if n else 0.0,
        latency_p95=float(np.percentile(latency, 95)) if n else 0.0,
        dram_bytes=dram_bytes,
        bandwidth_MBps=(dram_bytes / (duration / 1e9) / 1e6) if duration else 0.0,
        region_time_ns=region_time,
        region_samples=region_samples,
    )


# -- the pooled per-rank fold map ------------------------------------------


def _fold_one(
    rank: int,
    path: str | None,
    trace: Trace | None,
    grid_points: int,
    bandwidth: float,
    prune_tolerance: float | None,
    align_regions: tuple[str, ...] | None,
    cache_dir: str | None,
    rep_budget: int | None = None,
    rep_seed: int = 0,
) -> RankFold:
    """Fold one rank (top-level for picklability).

    Pool workers receive only *path* and load the spilled trace
    themselves (zero-copy memmap); the serial path passes the live
    trace.  Either way the fold goes through
    :func:`~repro.folding.report.fold_trace` — the PR-3 FoldPlan
    machinery, with the content-addressed cache when *cache_dir* is
    given.  With *rep_budget* the rank folds only that many
    representative instances (the extrapolated path); the compact
    :class:`RankFold` shape is identical either way.
    """
    if trace is None:
        trace = Trace.load(path)
    cache = None
    if cache_dir is not None:
        from repro.folding.cache import FoldCache

        cache = FoldCache(cache_dir)
    report = fold_trace(
        trace,
        grid_points=grid_points,
        bandwidth=bandwidth,
        prune_tolerance=prune_tolerance,
        align_regions=align_regions,
        cache=cache,
        rep_budget=rep_budget,
        rep_seed=rep_seed,
    )
    # The exact report counts kept samples on .samples.n; the
    # extrapolated fold counts the representative samples it folded.
    n_folded = (
        report.samples.n if hasattr(report, "samples") else report.n_folded
    )
    return RankFold(
        rank=rank,
        seed=int(trace.metadata.get("seed", 0)),
        digest=trace.digest(),
        n_instances=report.instances.n,
        mean_instance_ns=float(report.instances.mean_duration_ns),
        n_folded_samples=n_folded,
        counters=report.counters,
        stats=compute_rank_stats(trace),
    )


def fold_ranks(
    results: Sequence[RankResult],
    grid_points: int = 201,
    bandwidth: float = 0.015,
    prune_tolerance: float | None = 0.5,
    align_regions: tuple[str, ...] | None = None,
    max_workers: int | None = None,
    cache=None,
    rep_budget: int | None = None,
    rep_seed: int = 0,
) -> list[RankFold]:
    """Fold every rank of a rank-set run (pooled over spill files).

    When all results are spilled (the pooled :class:`RankSet` path),
    ranks fold in a process pool: each worker memory-maps its rank's
    spill file and returns a compact :class:`RankFold`, so the parent's
    sample memory stays O(1) regardless of rank count.  In-memory
    results, a single worker or an unspawnable pool fold serially —
    identical output either way, since both paths run :func:`_fold_one`.

    Pass a :class:`repro.folding.cache.FoldCache` as *cache* to serve
    repeated per-rank folds content-addressed from disk (workers reopen
    the cache directory themselves).

    With *rep_budget* every rank folds only that many representative
    instances and extrapolates (:mod:`repro.folding.extrapolate`) — the
    per-rank fold cost scales with the budget instead of the instance
    count, which multiplies across the whole rank set.
    """
    if max_workers is not None and max_workers < 1:
        raise ValueError(f"max_workers must be positive, got {max_workers}")
    results = list(results)
    if not results:
        return []
    cache_dir = str(cache.directory) if cache is not None else None
    params = (grid_points, bandwidth, prune_tolerance, align_regions,
              cache_dir, rep_budget, rep_seed)
    workers = (
        min(max_workers, len(results))
        if max_workers is not None
        else min(len(results), os.cpu_count() or 1)
    )
    spilled = all(
        r.summary.path is not None and not r.trace_loaded for r in results
    )
    if workers > 1 and len(results) > 1 and spilled:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _fold_one, r.summary.rank, r.summary.path, None,
                        *params,
                    )
                    for r in results
                ]
                return [f.result() for f in futures]
        except (pickle.PicklingError, BrokenProcessPool, OSError) as exc:
            logger.info(
                "fold_ranks fallback: process pool unavailable (%s: %s)",
                type(exc).__name__, exc,
            )
    folds = []
    for r in results:
        # Don't cache the trace on the result: folding all ranks
        # serially must still hold only one sample table at a time.
        trace = (
            r.trace
            if (r.trace_loaded or r.summary.path is None)
            else Trace.load(r.summary.path)
        )
        folds.append(_fold_one(r.summary.rank, None, trace, *params))
    return folds


# -- the cluster report -----------------------------------------------------


@dataclass
class ClusterReport:
    """The cluster-level Figure-1 variant: all ranks, folded and merged.

    ``counters`` is the instance-weighted merge of every rank's folded
    counter curves — the cluster's mean instance.  The imbalance tables
    quantify how far individual ranks stray from it.
    """

    folds: list[RankFold]
    #: instance-weighted merged counter curves
    counters: FoldedCounters
    #: merge weight per rank (defaults to each rank's instance count)
    weights: np.ndarray

    @property
    def n_ranks(self) -> int:
        return len(self.folds)

    # ------------------------------------------------------------------
    def imbalance(self) -> dict[str, Imbalance]:
        """Spread of the headline per-rank metrics."""
        pick = {
            "samples": lambda f: f.stats.n_samples,
            "duration_ns": lambda f: f.stats.duration_ns,
            "latency_mean": lambda f: f.stats.latency_mean,
            "bandwidth_MBps": lambda f: f.stats.bandwidth_MBps,
            "instance_ns": lambda f: f.mean_instance_ns,
        }
        return {
            name: rank_imbalance([fn(f) for f in self.folds], name)
            for name, fn in pick.items()
        }

    def region_imbalance(self) -> dict[str, Imbalance]:
        """Per-region min/median/max time across ranks.

        Only regions present on every rank are compared (edge ranks
        may lack halo regions)."""
        common = set(self.folds[0].stats.region_time_ns)
        for f in self.folds[1:]:
            common &= set(f.stats.region_time_ns)
        return {
            name: rank_imbalance(
                [f.stats.region_time_ns[name] for f in self.folds], name
            )
            for name in sorted(common)
        }

    # ------------------------------------------------------------------
    def rank_table(self) -> str:
        rows = [
            (
                f.rank,
                f.stats.n_samples,
                f.n_instances,
                f.stats.duration_ns / 1e6,
                f.stats.latency_mean,
                f.stats.bandwidth_MBps,
            )
            for f in self.folds
        ]
        return format_table(
            ["rank", "samples", "instances", "duration ms", "mean lat",
             "DRAM MB/s"],
            rows,
            title=f"Cluster — {self.n_ranks} ranks, per-rank folded",
        )

    def imbalance_table(self) -> str:
        rows = [
            (
                im.metric,
                im.min,
                im.median,
                im.max,
                im.imbalance_factor,
            )
            for im in self.imbalance().values()
        ]
        return format_table(
            ["metric", "min", "median", "max", "max/mean"],
            rows,
            floatfmt=",.2f",
            title="Cross-rank imbalance",
        )

    def region_table(self) -> str:
        rows = [
            (
                im.metric,
                im.min / 1e6,
                im.median / 1e6,
                im.max / 1e6,
                im.imbalance_factor,
            )
            for im in self.region_imbalance().values()
        ]
        return format_table(
            ["region", "min ms", "median ms", "max ms", "max/mean"],
            rows,
            floatfmt=",.2f",
            title="Per-region time across ranks",
        )

    def render(self) -> str:
        """The cluster summary the CLI prints next to Figure 1."""
        mips = self.counters.mips()
        ipc = self.counters.ipc()
        lines = [
            self.rank_table(),
            "",
            self.imbalance_table(),
            "",
            self.region_table(),
            "",
            f"cluster mean instance: {self.counters.duration_ns / 1e6:.3f} ms"
            f" (merged over "
            f"{sum(f.n_instances for f in self.folds)} instances)",
            f"cluster MIPS (mean/max): {float(mips.mean()):.0f} / "
            f"{float(mips.max()):.0f}",
            f"cluster IPC mean: {float(ipc.mean()):.2f}",
        ]
        return "\n".join(lines)


def build_cluster_report(
    folds: Sequence[RankFold],
    weights: Sequence[float] | None = None,
) -> ClusterReport:
    """Merge per-rank folds into the cluster report.

    Default weights are each rank's folded instance count, making the
    merged curves the mean over all instances of the whole cluster.
    """
    folds = sorted(folds, key=lambda f: f.rank)
    if not folds:
        raise ValueError("cannot build a cluster report from zero ranks")
    w = (
        np.asarray([f.n_instances for f in folds], dtype=np.float64)
        if weights is None
        else np.asarray(list(weights), dtype=np.float64)
    )
    merged = merge_counters([f.counters for f in folds], w)
    return ClusterReport(folds=list(folds), counters=merged, weights=w)
