"""Address-sweep detection in the folded address view.

Identifies the linear address ramps of Figure 1's middle panel and
their direction: the forward sweep a1/d1 ("accesses the address space
from lower to upper addresses"), the backward sweep a2/d2, and whether
a structure is traversed completely.

Detection is slope-based rather than trajectory-based: within each σ
bin the direction is the sign of the local address-vs-σ correlation,
which tolerates interleaved sub-arrays whose offsets stay below the
bin's slope span.  Widely separated address bands (the heap/mmap split)
drown the correlation in inter-band variance; split them first with
:func:`split_address_bands` and detect per band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.folding.address import FoldedAddresses

__all__ = ["Sweep", "detect_sweeps", "split_address_bands"]


@dataclass(frozen=True)
class Sweep:
    """One monotone address ramp (possibly several parallel arrays)."""

    sigma_lo: float
    sigma_hi: float
    direction: int  # +1 forward (ascending addresses), -1 backward
    addr_lo: int
    addr_hi: int
    n_samples: int

    @property
    def span_bytes(self) -> int:
        return self.addr_hi - self.addr_lo

    @property
    def width(self) -> float:
        return self.sigma_hi - self.sigma_lo

    def covers(self, lo: int, hi: int, tolerance: float = 0.10) -> bool:
        """Does this sweep traverse (essentially) all of ``[lo, hi)``?"""
        return self.span_bytes >= (1.0 - tolerance) * (hi - lo)


def detect_sweeps(
    addresses: FoldedAddresses,
    mask: np.ndarray | None = None,
    sigma_lo: float = 0.0,
    sigma_hi: float = 1.0,
    bins: int = 32,
    min_bin_samples: int = 8,
    min_correlation: float = 0.25,
) -> list[Sweep]:
    """Segment the (σ, address) scatter into monotone ramps.

    The σ window is split into *bins*; each bin's direction is the sign
    of the local address-vs-σ regression slope (when the correlation is
    strong enough); consecutive same-direction bins merge into sweeps.

    Parameters
    ----------
    addresses:
        The folded address view.
    mask:
        Restrict to these samples (e.g. one object's).
    sigma_lo, sigma_hi:
        Window to analyse (e.g. one phase).
    min_correlation:
        Bins whose |corr(σ, addr)| falls below this are treated as
        directionless and attached to the surrounding sweep.
    """
    sel = (addresses.sigma >= sigma_lo) & (addresses.sigma < sigma_hi)
    if mask is not None:
        sel &= mask
    sigma = addresses.sigma[sel]
    addr = addresses.address[sel].astype(np.float64)
    if sigma.size < 2 * min_bin_samples:
        return []

    edges = np.linspace(sigma_lo, sigma_hi, bins + 1)
    which = np.clip(np.searchsorted(edges, sigma, side="right") - 1, 0, bins - 1)

    directions = np.zeros(bins, dtype=np.int64)
    counts = np.zeros(bins, dtype=np.int64)
    lo_addr = np.zeros(bins, dtype=np.float64)
    hi_addr = np.zeros(bins, dtype=np.float64)
    for b in range(bins):
        in_bin = which == b
        n = int(in_bin.sum())
        counts[b] = n
        if n < min_bin_samples:
            continue
        s, a = sigma[in_bin], addr[in_bin]
        lo_addr[b], hi_addr[b] = float(a.min()), float(a.max())
        s_std, a_std = s.std(), a.std()
        if s_std == 0 or a_std == 0:
            continue
        r = float(np.mean((s - s.mean()) * (a - a.mean())) / (s_std * a_std))
        if abs(r) >= min_correlation:
            directions[b] = 1 if r > 0 else -1

    # Merge consecutive bins into same-direction sweeps; directionless
    # (0) bins extend the current sweep.
    sweeps: list[Sweep] = []
    current: dict | None = None
    for b in range(bins):
        if counts[b] < min_bin_samples:
            continue
        d = int(directions[b])
        if current is None:
            current = _new_run(b, d, edges, lo_addr, hi_addr, counts)
        elif d == 0 or d == current["dir"] or current["dir"] == 0:
            if current["dir"] == 0 and d != 0:
                current["dir"] = d
            _extend_run(current, b, edges, lo_addr, hi_addr, counts)
        else:
            sweeps.append(_finish_run(current))
            current = _new_run(b, d, edges, lo_addr, hi_addr, counts)
    if current is not None:
        sweeps.append(_finish_run(current))
    return sweeps


def _new_run(b, d, edges, lo_addr, hi_addr, counts) -> dict:
    return {
        "dir": d,
        "sigma_lo": float(edges[b]),
        "sigma_hi": float(edges[b + 1]),
        "addr_lo": lo_addr[b],
        "addr_hi": hi_addr[b],
        "n": int(counts[b]),
    }


def _extend_run(run, b, edges, lo_addr, hi_addr, counts) -> None:
    run["sigma_hi"] = float(edges[b + 1])
    run["addr_lo"] = min(run["addr_lo"], lo_addr[b])
    run["addr_hi"] = max(run["addr_hi"], hi_addr[b])
    run["n"] += int(counts[b])


def _finish_run(run) -> Sweep:
    return Sweep(
        sigma_lo=run["sigma_lo"],
        sigma_hi=run["sigma_hi"],
        direction=run["dir"],  # 0 = no direction established (flat)
        addr_lo=int(run["addr_lo"]),
        addr_hi=int(run["addr_hi"]),
        n_samples=run["n"],
    )


def split_address_bands(
    addresses: FoldedAddresses,
    mask: np.ndarray | None = None,
    gap_factor: float = 0.20,
    max_bands: int = 8,
) -> list[np.ndarray]:
    """Split samples into contiguous address bands.

    A process address space is sparse: the heap and the mmap region sit
    orders of magnitude apart, and correlation-based sweep detection on
    the raw mixture is dominated by the inter-band variance.  This
    helper cuts the sorted unique addresses at every gap larger than
    ``gap_factor`` × (largest band-internal span) and returns one
    boolean sample mask per band, largest sample count first.
    """
    base = (
        np.ones(addresses.n, dtype=bool) if mask is None else np.asarray(mask, bool)
    )
    addr = addresses.address[base]
    if addr.size == 0:
        return []
    uniq = np.sort(np.unique(addr))
    if uniq.size == 1:
        return [base]
    gaps = np.diff(uniq).astype(np.float64)
    # Iteratively cut the largest gaps while they dwarf the bands.
    order = np.argsort(gaps)[::-1]
    cuts: list[int] = []
    span = float(uniq[-1] - uniq[0])
    for gi in order[: max_bands - 1]:
        remaining = span - gaps[cuts].sum() if cuts else span
        if gaps[gi] >= gap_factor * max(remaining, 1.0):
            cuts.append(gi)
        else:
            break
    if not cuts:
        return [base]
    boundaries = np.sort(uniq[np.asarray(cuts, dtype=np.int64)])
    all_addr = addresses.address
    bands: list[np.ndarray] = []
    edges = [None] + [int(b) for b in boundaries] + [None]
    for i in range(len(edges) - 1):
        m = base.copy()
        if edges[i] is not None:
            m &= all_addr > edges[i]
        if edges[i + 1] is not None:
            m &= all_addr <= edges[i + 1]
        if m.any():
            bands.append(m)
    bands.sort(key=lambda m: int(m.sum()), reverse=True)
    return bands
