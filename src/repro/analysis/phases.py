"""Phase segmentation of a folded HPCG iteration.

Figure 1 annotates each iteration as::

    A (a1 a2)   B      C          D (d1 d2)   E
    SYMGS       SPMV   coarse MG  SYMGS       SPMV

where A/D are the fine-level pre/post-smoothing calls inside the MG
preconditioner (each a forward sweep a1/d1 followed by a backward sweep
a2/d2), B is the fine-level residual SPMV inside MG, C is the recursion
onto the coarser levels, and E is CG's own SPMV.  This module derives
those σ windows from the instrumented region events, averaged across
instances, and splits the SYMGS phases into their two sweeps using the
sample labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.extrae.events import EventKind
from repro.extrae.trace import Trace
from repro.folding.detect import FoldInstances
from repro.folding.fold import FoldedSamples

__all__ = ["IterationPhases", "Phase", "segment_iteration"]


@dataclass(frozen=True)
class Phase:
    """One labelled σ window of the folded iteration."""

    label: str
    region: str
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not self.hi > self.lo:
            raise ValueError(f"phase {self.label!r} has empty window")

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def contains(self, sigma: float) -> bool:
        return self.lo <= sigma < self.hi


@dataclass
class IterationPhases:
    """All phases of the folded iteration, in σ order."""

    phases: list[Phase] = field(default_factory=list)

    def __iter__(self):
        return iter(self.phases)

    def __len__(self) -> int:
        return len(self.phases)

    def get(self, label: str) -> Phase:
        for p in self.phases:
            if p.label == label:
                return p
        raise KeyError(f"no phase labelled {label!r}")

    def labels(self) -> list[str]:
        return [p.label for p in self.phases]

    def major_sequence(self) -> list[str]:
        """The top-level sequence (A B C D E, no sweep sublabels)."""
        return [p.label for p in self.phases if len(p.label) == 1]


def _region_spans(trace: Trace, t0: float, t1: float) -> list[tuple[str, float, float]]:
    """(name, enter, exit) of every region occurrence within [t0, t1)."""
    stack: list[tuple[str, float]] = []
    spans: list[tuple[str, float, float]] = []
    for ev in trace.events:
        if ev.time_ns < t0 or ev.time_ns > t1:
            continue
        if ev.kind == EventKind.REGION_ENTER:
            stack.append((ev.name, ev.time_ns))
        elif ev.kind == EventKind.REGION_EXIT:
            for i in range(len(stack) - 1, -1, -1):
                if stack[i][0] == ev.name:
                    name, enter = stack.pop(i)
                    spans.append((name, enter, ev.time_ns))
                    break
    spans.sort(key=lambda s: s[1])
    return spans


def _contains(outer: tuple[float, float], inner: tuple[float, float]) -> bool:
    return outer[0] <= inner[0] and inner[1] <= outer[1]


def _instance_phases(trace: Trace, t0: float, t1: float) -> dict[str, tuple[float, float]]:
    """Absolute-time phase windows of one instance."""
    spans = _region_spans(trace, t0, t1)
    mgs = [(a, b) for n, a, b in spans if n == "ComputeMG_ref"]
    if not mgs:
        raise ValueError("instance has no ComputeMG_ref region")
    outer = max(mgs, key=lambda iv: iv[1] - iv[0])
    inner = [iv for iv in mgs if iv != outer and _contains(outer, iv)]
    # Only the top-most nested MG call is C; deeper recursion nests in it.
    inner_top = [
        iv for iv in inner if not any(_contains(other, iv) for other in inner if other != iv)
    ]

    def in_outer_not_inner(iv):
        return _contains(outer, iv) and not any(_contains(i, iv) for i in inner_top)

    symgs = [
        (a, b) for n, a, b in spans if n == "ComputeSYMGS_ref" and in_outer_not_inner((a, b))
    ]
    spmv_in = [
        (a, b) for n, a, b in spans if n == "ComputeSPMV_ref" and in_outer_not_inner((a, b))
    ]
    spmv_out = [
        (a, b)
        for n, a, b in spans
        if n == "ComputeSPMV_ref" and not _contains(outer, (a, b))
    ]
    out: dict[str, tuple[float, float]] = {}
    if symgs:
        out["A"] = symgs[0]
    if spmv_in:
        out["B"] = spmv_in[0]
    if inner_top:
        out["C"] = inner_top[0]
    if len(symgs) >= 2:
        out["D"] = symgs[-1]
    if spmv_out:
        out["E"] = spmv_out[0]
    return out


def segment_iteration(
    trace: Trace,
    instances: FoldInstances,
    folded: FoldedSamples | None = None,
) -> IterationPhases:
    """Average the per-instance phase windows onto the σ axis.

    With *folded* supplied, the SYMGS phases A and D are additionally
    split into their forward/backward sweeps (a1/a2, d1/d2) using the
    ``symgs_forward``/``symgs_backward`` sample labels.
    """
    acc: dict[str, list[tuple[float, float]]] = {}
    for t0, t1 in instances.intervals:
        span = t1 - t0
        for label, (a, b) in _instance_phases(trace, t0, t1).items():
            acc.setdefault(label, []).append(((a - t0) / span, (b - t0) / span))
    phases: list[Phase] = []
    region_of = {
        "A": "ComputeSYMGS_ref",
        "B": "ComputeSPMV_ref",
        "C": "ComputeMG_ref",
        "D": "ComputeSYMGS_ref",
        "E": "ComputeSPMV_ref",
    }
    for label in ("A", "B", "C", "D", "E"):
        if label not in acc:
            continue
        windows = np.array(acc[label])
        phases.append(
            Phase(label, region_of[label], float(windows[:, 0].mean()),
                  float(windows[:, 1].mean()))
        )
    result = IterationPhases(phases)

    if folded is not None:
        sublabels = []
        for parent, fwd_name, bwd_name in (
            ("A", "a1", "a2"),
            ("D", "d1", "d2"),
        ):
            try:
                phase = result.get(parent)
            except KeyError:
                continue
            split = _split_sweeps(folded, phase)
            if split is not None:
                mid = split
                sublabels.append(Phase(fwd_name, phase.region, phase.lo, mid))
                sublabels.append(Phase(bwd_name, phase.region, mid, phase.hi))
        result.phases.extend(sublabels)
        result.phases.sort(key=lambda p: (p.lo, p.hi))
    return result


def _split_sweeps(folded: FoldedSamples, phase: Phase) -> float | None:
    """σ of the forward→backward transition within a SYMGS phase."""
    # Find the label ids of the two sweeps from the folded table.
    sigma = folded.sigma
    in_phase = (sigma >= phase.lo) & (sigma < phase.hi)
    if not in_phase.any():
        return None
    labels = folded.table.label_id[in_phase]
    sig = sigma[in_phase]
    # The forward sweep occupies the early part: its last sample's σ is
    # the boundary.  Identify the forward label as the one whose σ
    # median is smaller.
    ids = np.unique(labels)
    if ids.size < 2:
        return None
    medians = {int(i): float(np.median(sig[labels == i])) for i in ids}
    first = min(medians, key=medians.get)
    boundary = float(sig[labels == first].max())
    if not phase.lo < boundary < phase.hi:
        return None
    return boundary
