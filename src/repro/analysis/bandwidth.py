"""Effective-bandwidth approximation (§III of the paper).

The paper approximates the memory bandwidth of a phase that traverses a
data structure completely as ``structure size / phase duration`` — "the
approximations for the memory bandwidth while traversing the structure
are 4197 MB/s and 4315 MB/s [a1, a2] ... the observed bandwidth while
traversing the same structure in region B achieves 6427 MB/s".

This module reproduces exactly that estimator on a folded report: the
structure size comes from the resolved data object, the duration from
the phase's σ window scaled by the mean instance duration.
"""

from __future__ import annotations

from repro.analysis.phases import Phase
from repro.folding.report import FoldedReport

__all__ = ["phase_bandwidth_MBps"]


def phase_bandwidth_MBps(
    report: FoldedReport,
    phase: Phase,
    object_name: str,
    require_coverage: bool = False,
) -> float:
    """Effective bandwidth of traversing *object_name* during *phase*.

    Parameters
    ----------
    report:
        The folded report.
    phase:
        The σ window (e.g. a1, a2 or B).
    object_name:
        The traversed structure (Figure 1's 617 MB matrix group).
    require_coverage:
        If set, raise unless the phase's samples of the object span
        (essentially) its whole address range — the paper checks that
        "a1 and a2 traverse the whole data structure" before applying
        the approximation.

    Returns
    -------
    float
        ``bytes_user(object) / duration(phase)`` in MB/s (1 MB = 1e6 B,
        the convention of the paper's numbers).
    """
    record = None
    for rec in report.registry.records:
        if rec.name == object_name:
            record = rec
            break
    if record is None:
        raise KeyError(f"no data object named {object_name!r}")

    if require_coverage:
        mask = report.addresses.object_samples(object_name)
        window = (
            (report.addresses.sigma >= phase.lo)
            & (report.addresses.sigma < phase.hi)
            & mask
        )
        if not window.any():
            raise ValueError(
                f"phase {phase.label!r} has no samples of {object_name!r}"
            )
        addr = report.addresses.address[window]
        covered = int(addr.max()) - int(addr.min())
        if covered < 0.80 * record.span:
            raise ValueError(
                f"phase {phase.label!r} covers only {covered / record.span:.0%} "
                f"of {object_name!r}; the traversal approximation needs full coverage"
            )

    duration_s = report.counters.window_duration_ns(phase.lo, phase.hi) * 1e-9
    if duration_s <= 0:
        raise ValueError(f"phase {phase.label!r} has zero duration")
    return record.bytes_user / 1e6 / duration_s
