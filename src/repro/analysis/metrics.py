"""Whole-run and per-phase performance metrics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.phases import Phase
from repro.folding.report import FoldedReport

__all__ = ["RunMetrics", "run_metrics", "phase_metrics"]


@dataclass(frozen=True)
class RunMetrics:
    """Headline performance numbers of a folded region or phase."""

    mips_mean: float
    mips_max: float
    ipc_mean: float
    branches_per_instr: float
    l1d_miss_per_instr: float
    l2_miss_per_instr: float
    l3_miss_per_instr: float
    duration_ns: float

    def ipc_at_frequency(self, frequency_hz: float) -> float:
        """IPC implied by the mean MIPS at a nominal frequency — the
        paper's '1500 MIPS representing an IPC of 0.6' conversion."""
        return self.mips_mean * 1e6 / frequency_hz


def _window_metrics(report: FoldedReport, lo: float, hi: float) -> RunMetrics:
    c = report.counters
    sel = (c.sigma >= lo) & (c.sigma <= hi)
    if not sel.any():
        raise ValueError(f"no folded grid points in [{lo}, {hi}]")
    mips = c.mips()[sel]
    ipc = c.ipc()[sel]

    def rate(name: str) -> float:
        return float(c.per_instruction(name)[sel].mean())

    return RunMetrics(
        mips_mean=float(mips.mean()),
        mips_max=float(mips.max()),
        ipc_mean=float(ipc.mean()),
        branches_per_instr=rate("branches"),
        l1d_miss_per_instr=rate("l1d_misses"),
        l2_miss_per_instr=rate("l2_misses"),
        l3_miss_per_instr=rate("l3_misses"),
        duration_ns=c.window_duration_ns(lo, min(hi, 1.0)),
    )


def run_metrics(report: FoldedReport) -> RunMetrics:
    """Metrics over the whole folded instance."""
    return _window_metrics(report, 0.0, 1.0)


def phase_metrics(report: FoldedReport, phase: Phase) -> RunMetrics:
    """Metrics restricted to one phase's σ window."""
    return _window_metrics(report, phase.lo, phase.hi)
