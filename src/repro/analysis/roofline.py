"""Roofline positioning of folded phases.

The classic roofline model bounds a kernel's achievable flop rate by
``min(peak_flops, arithmetic_intensity × peak_bandwidth)``.  With the
folded counters carrying flops and DRAM traffic (demand lines plus
write-backs), every phase of the folded iteration gets a point on the
roofline — making the §III observation quantitative: HPCG's kernels sit
deep in the memory-bound region, which is why the paper reports their
behaviour in MB/s rather than GFLOP/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.phases import IterationPhases
from repro.folding.report import FoldedReport
from repro.util.tables import format_table

__all__ = ["MachineRoof", "PhasePoint", "RooflineReport", "roofline"]


@dataclass(frozen=True)
class MachineRoof:
    """The machine's roofline ceilings.

    Defaults approximate the simulated Haswell-like core: 2.5 GHz × 16
    DP flops/cycle (2×FMA on 4-wide AVX2) and a per-core share of the
    socket's memory bandwidth.
    """

    peak_gflops: float = 40.0
    peak_bandwidth_GBps: float = 8.0

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0 or self.peak_bandwidth_GBps <= 0:
            raise ValueError("roofline ceilings must be positive")

    @property
    def ridge_intensity(self) -> float:
        """Flops/byte at which the two ceilings meet."""
        return self.peak_gflops / self.peak_bandwidth_GBps

    def bound_gflops(self, intensity: float) -> float:
        """Attainable GFLOP/s at a given arithmetic intensity."""
        return min(self.peak_gflops, intensity * self.peak_bandwidth_GBps)


@dataclass(frozen=True)
class PhasePoint:
    """One phase's position on the roofline."""

    label: str
    intensity: float  # flops per DRAM byte
    gflops: float  # achieved
    bandwidth_GBps: float  # achieved DRAM traffic rate
    bound_gflops: float  # roofline ceiling at this intensity

    @property
    def efficiency(self) -> float:
        """Achieved / attainable at this intensity."""
        return self.gflops / self.bound_gflops if self.bound_gflops else 0.0


@dataclass
class RooflineReport:
    """Roofline points for every folded phase."""

    roof: MachineRoof
    points: list[PhasePoint] = field(default_factory=list)

    def point(self, label: str) -> PhasePoint:
        for p in self.points:
            if p.label == label:
                return p
        raise KeyError(f"no phase {label!r}")

    def to_table(self) -> str:
        rows = [
            (
                p.label,
                p.intensity,
                p.gflops,
                p.bandwidth_GBps,
                p.bound_gflops,
                p.efficiency * 100.0,
                "memory" if p.intensity < self.roof.ridge_intensity else "compute",
            )
            for p in self.points
        ]
        text = format_table(
            ["phase", "flops/byte", "GFLOP/s", "DRAM GB/s",
             "roof GFLOP/s", "efficiency %", "bound"],
            rows, floatfmt=",.3f",
            title="Roofline positions of the folded phases",
        )
        text += (
            f"\n\nridge point: {self.roof.ridge_intensity:.2f} flops/byte "
            f"(peak {self.roof.peak_gflops:.0f} GFLOP/s, "
            f"{self.roof.peak_bandwidth_GBps:.0f} GB/s)"
        )
        return text


def roofline(
    report: FoldedReport,
    phases: IterationPhases,
    roof: MachineRoof | None = None,
    line_size: int = 64,
) -> RooflineReport:
    """Place every folded phase on the roofline.

    Uses the folded flops and DRAM-traffic (lines + write-backs)
    counters; a phase's arithmetic intensity is its flop total divided
    by its total DRAM bytes moved.
    """
    roof = roof or MachineRoof()
    c = report.counters
    sigma = c.sigma
    out = RooflineReport(roof=roof)
    for p in phases:
        sel = (sigma >= p.lo) & (sigma < p.hi)
        if not sel.any():
            continue
        duration_s = c.window_duration_ns(p.lo, min(p.hi, 1.0)) * 1e-9
        if duration_s <= 0:
            continue
        flop_rate = c["flops"].rate[sel].mean()  # per ns
        dram_rate = (
            c["dram_lines"].rate[sel].mean()
            + c["dram_writebacks"].rate[sel].mean()
        ) * line_size  # bytes per ns
        gflops = flop_rate  # 1/ns == G/s
        bandwidth = dram_rate  # GB/s
        intensity = flop_rate / dram_rate if dram_rate > 0 else float("inf")
        out.points.append(
            PhasePoint(
                label=p.label,
                intensity=float(intensity),
                gflops=float(gflops),
                bandwidth_GBps=float(bandwidth),
                bound_gflops=float(roof.bound_gflops(intensity)),
            )
        )
    return out
