"""Access-cost (latency) breakdowns.

§I of the paper situates the work against tools that report "the most
referenced variables or the highest latency accesses" (HPCToolkit,
dmem_advisor, VTune).  This module provides that complementary view on
our traces — per-data-source and per-object cost statistics plus the
top-cost samples — so the folded exploration and the classic hot-list
workflow can be compared on the same data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.extrae.index import group_rows
from repro.extrae.trace import SampleTable, Trace
from repro.memsim.datasource import DataSource
from repro.objects.registry import DataObjectRegistry
from repro.util.tables import format_table

__all__ = ["LatencyBreakdown", "latency_breakdown", "top_cost_samples"]


@dataclass(frozen=True)
class SourceCost:
    """Latency statistics of one data source."""

    source: DataSource
    count: int
    mean: float
    p50: float
    p95: float
    #: share of the total sampled access cost attributed to this source
    cost_share: float


@dataclass(frozen=True)
class ObjectCost:
    """Latency statistics of one data object."""

    name: str
    count: int
    mean: float
    cost_share: float


@dataclass
class LatencyBreakdown:
    """Cost statistics over a sample table."""

    n_samples: int
    total_cost_cycles: float
    by_source: list[SourceCost] = field(default_factory=list)
    by_object: list[ObjectCost] = field(default_factory=list)

    def source(self, src: DataSource) -> SourceCost:
        for s in self.by_source:
            if s.source == src:
                return s
        raise KeyError(f"no samples from {src!r}")

    def to_table(self, top_objects: int = 8) -> str:
        rows = [
            (s.source.pretty, s.count, s.mean, s.p50, s.p95, s.cost_share * 100.0)
            for s in self.by_source
        ]
        text = format_table(
            ["source", "samples", "mean cyc", "p50 cyc", "p95 cyc", "cost %"],
            rows,
            title="Access cost by data source",
        )
        if self.by_object:
            rows = [
                (o.name, o.count, o.mean, o.cost_share * 100.0)
                for o in self.by_object[:top_objects]
            ]
            text += "\n\n" + format_table(
                ["object", "samples", "mean cyc", "cost %"],
                rows,
                title="Access cost by data object (highest first)",
            )
        return text


def latency_breakdown(
    trace_or_table: Trace | SampleTable,
    registry: DataObjectRegistry | None = None,
) -> LatencyBreakdown:
    """Break the sampled access cost down by source and object.

    Each sample stands for one sampling period's worth of accesses, so
    sample-cost sums are proportional to real stall contributions.
    """
    if isinstance(trace_or_table, Trace):
        table = trace_or_table.sample_table()
        if registry is None:
            registry = DataObjectRegistry(trace_or_table.objects)
    else:
        table = trace_or_table
    lat = table.latency.astype(np.float64)
    total = float(lat.sum())
    out = LatencyBreakdown(n_samples=table.n, total_cost_cycles=total)
    if table.n == 0:
        return out

    # One grouping pass per key column instead of a full-table boolean
    # mask per distinct value; each group's rows are ascending, so the
    # float reductions see the same elements in the same order.
    for code, rows in zip(*group_rows(table.source)):
        values = lat[rows]
        out.by_source.append(
            SourceCost(
                source=DataSource(int(code)),
                count=int(rows.size),
                mean=float(values.mean()),
                p50=float(np.median(values)),
                p95=float(np.percentile(values, 95)),
                cost_share=float(values.sum()) / total if total else 0.0,
            )
        )
    out.by_source.sort(key=lambda s: s.cost_share, reverse=True)

    if registry is not None and len(registry):
        idx = registry.resolve_bulk(table.address)
        for rec_i, rows in zip(*group_rows(idx)):
            values = lat[rows]
            name = (
                registry.records[int(rec_i)].name if rec_i >= 0 else "(unmatched)"
            )
            out.by_object.append(
                ObjectCost(
                    name=name,
                    count=int(rows.size),
                    mean=float(values.mean()),
                    cost_share=float(values.sum()) / total if total else 0.0,
                )
            )
        out.by_object.sort(key=lambda o: o.cost_share, reverse=True)
    return out


def top_cost_samples(table: SampleTable, n: int = 20) -> SampleTable:
    """The *n* highest-cost samples — the classic hot-access list."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    order = np.argsort(table.latency)[::-1][:n]
    return table.select(order)
