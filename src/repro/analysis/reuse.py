"""Reuse-distance estimation from sampled addresses.

The paper's introduction lists "calculating reuse distances" among the
insights a memory-access analysis enables beyond plain hot-spot
ranking.  Exact reuse distances need the full access trace; with PEBS
samples only a *sampled* estimate is possible — this module provides
the standard one: the distance between consecutive sampled accesses to
the same cache line, scaled by the sampling period (each sample stands
for ``period`` accesses), binned into a histogram whose CDF is directly
comparable to cache capacities.

References: Beyls & D'Hollander (the paper's [4]) pioneered
reuse-distance-based locality analysis; sampling-based estimators are
standard practice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.extrae.trace import SampleTable
from repro.util.tables import format_table

__all__ = ["ReuseProfile", "sampled_reuse_profile"]


@dataclass
class ReuseProfile:
    """Sampled reuse-distance histogram (distances in *accesses*)."""

    #: log2 bin edges, in accesses: bin i covers [2^i, 2^{i+1})
    log2_edges: np.ndarray
    counts: np.ndarray
    #: lines sampled exactly once (no reuse observed)
    cold: int
    sampling_period: float

    @property
    def n_reuses(self) -> int:
        return int(self.counts.sum())

    def cdf(self) -> np.ndarray:
        """Fraction of observed reuses at distance ≤ each bin's top."""
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return np.cumsum(self.counts) / total

    def hit_fraction(self, cache_bytes: int, bytes_per_access: float = 8.0) -> float:
        """Fraction of observed reuses a fully-associative LRU cache of
        *cache_bytes* would catch (distance · bytes/access ≤ capacity)."""
        if self.n_reuses == 0:
            return 0.0
        capacity_accesses = cache_bytes / bytes_per_access
        cdf = self.cdf()
        tops = 2.0 ** (self.log2_edges[1:])
        i = int(np.searchsorted(tops, capacity_accesses))
        if i == 0:
            return 0.0
        return float(cdf[min(i, cdf.size) - 1])

    def to_table(self) -> str:
        rows = []
        cdf = self.cdf()
        for i in range(self.counts.size):
            if self.counts[i] == 0:
                continue
            rows.append(
                (
                    f"2^{int(self.log2_edges[i])}–2^{int(self.log2_edges[i + 1])}",
                    int(self.counts[i]),
                    cdf[i] * 100.0,
                )
            )
        return format_table(
            ["reuse distance (accesses)", "reuses", "CDF %"],
            rows,
            title="Sampled reuse-distance profile",
        )


def sampled_reuse_profile(
    table: SampleTable,
    mask: np.ndarray | None = None,
    line_size: int = 64,
    sampling_period: float = 1.0,
    max_log2: int = 40,
) -> ReuseProfile:
    """Estimate the reuse-distance profile from a sample table.

    Consecutive samples of the same cache line are ``k`` samples apart;
    each sample stands for ``sampling_period`` accesses, so the reuse
    distance estimate is ``k * sampling_period``.

    Parameters
    ----------
    table:
        Time-sorted samples.
    mask:
        Restrict to a subset (one object, one phase, loads only, ...).
    sampling_period:
        The PEBS period the trace was collected with (use
        ``trace.metadata["load_period"]``).
    """
    addresses = table.address if mask is None else table.address[mask]
    if sampling_period <= 0:
        raise ValueError("sampling_period must be positive")
    lines = (addresses >> np.uint64(int(np.log2(line_size)))).astype(np.int64)
    n = lines.size
    edges = np.arange(max_log2 + 1, dtype=np.float64)
    counts = np.zeros(max_log2, dtype=np.int64)
    cold = 0
    if n:
        # Stable sort groups equal lines while preserving time order
        # within each group; consecutive same-line entries are then
        # successive touches of that line.
        order = np.argsort(lines, kind="stable")
        sorted_lines = lines[order]
        same = sorted_lines[1:] == sorted_lines[:-1]
        prev_idx = order[:-1][same]
        curr_idx = order[1:][same]
        sample_gaps = (curr_idx - prev_idx).astype(np.float64)
        distances = sample_gaps * sampling_period
        log2d = np.clip(np.log2(np.maximum(distances, 1.0)), 0, max_log2 - 1e-9)
        np.add.at(counts, log2d.astype(np.int64), 1)
        _, inverse = np.unique(lines, return_inverse=True)
        cold = int((np.bincount(inverse) == 1).sum())
    return ReuseProfile(
        log2_edges=edges,
        counts=counts,
        cold=cold,
        sampling_period=float(sampling_period),
    )
