"""Hybrid-memory placement advisor.

The paper closes with: "the fact that a portion of the address space is
only read during the execution phase means that this region might
benefit from memory technologies where loads are faster than stores"
(pointing at read-asymmetric technologies and the explicitly-managed
multi-memory systems of Peña & Balaji, refs [2]/[6]).

This module turns that observation into a tool: given a folded report
and a model of a two-tier memory system, classify every data object by
its sampled access mix (read-only / read-mostly / read-write, hot /
cold) and recommend a placement, with a first-order estimate of the
memory-time change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.extrae.memalloc import ObjectRecord
from repro.folding.report import FoldedReport
from repro.memsim.patterns import MemOp
from repro.util.tables import format_table

__all__ = ["HybridMemoryModel", "PlacementAdvice", "PlacementPlan", "advise_placement"]


@dataclass(frozen=True)
class HybridMemoryModel:
    """A two-tier memory: default DRAM plus an alternative technology.

    The defaults describe a read-asymmetric class of memory (e.g. a
    denser NVM-like tier): loads cost about the same as DRAM, stores
    are several times more expensive, capacity is large.  Setting
    ``load_factor < 1`` instead models a faster-read tier (e.g. on-
    package memory used read-only).

    Factors are relative to DRAM access cost.
    """

    name: str = "read-optimized tier"
    load_factor: float = 0.7
    store_factor: float = 2.0
    capacity_bytes: int = 1 << 40

    def __post_init__(self) -> None:
        if self.load_factor <= 0 or self.store_factor <= 0:
            raise ValueError("cost factors must be positive")
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")


@dataclass
class PlacementAdvice:
    """Recommendation for one data object."""

    record: ObjectRecord
    classification: str  # "read-only" | "read-mostly" | "read-write"
    n_loads: int
    n_stores: int
    recommend_move: bool
    #: estimated relative change of this object's memory time when
    #: moved (negative = improvement)
    delta: float

    @property
    def name(self) -> str:
        return self.record.name


@dataclass
class PlacementPlan:
    """The advisor's full output."""

    model: HybridMemoryModel
    advice: list[PlacementAdvice] = field(default_factory=list)

    def moved(self) -> list[PlacementAdvice]:
        return [a for a in self.advice if a.recommend_move]

    def moved_bytes(self) -> int:
        return sum(a.record.bytes_user for a in self.moved())

    def total_delta(self) -> float:
        """Traffic-weighted relative memory-time change of the plan."""
        total = sum(a.n_loads + a.n_stores for a in self.advice)
        if total == 0:
            return 0.0
        moved = sum(
            (a.n_loads + a.n_stores) * a.delta for a in self.advice if a.recommend_move
        )
        return moved / total

    def to_table(self, top: int = 10) -> str:
        ranked = sorted(
            self.advice, key=lambda a: a.n_loads + a.n_stores, reverse=True
        )[:top]
        rows = [
            (
                a.name,
                a.record.bytes_user / 1e6,
                a.classification,
                a.n_loads,
                a.n_stores,
                "move" if a.recommend_move else "keep",
                a.delta * 100.0,
            )
            for a in ranked
        ]
        return format_table(
            ["object", "MB", "class", "loads", "stores", "advice", "delta %"],
            rows,
            title=f"Hybrid-memory placement ({self.model.name})",
        )


def advise_placement(
    report: FoldedReport,
    model: HybridMemoryModel | None = None,
    read_mostly_threshold: float = 0.05,
    min_samples: int = 20,
) -> PlacementPlan:
    """Classify objects and recommend hybrid-memory placement.

    An object moves to the alternative tier when its sampled store
    share is small enough that the modeled load gain outweighs the
    store penalty, subject to the tier's capacity (greedy by benefit).

    Parameters
    ----------
    report:
        Folded report over the *execution phase* (setup writes are
        already excluded by the folding instances).
    read_mostly_threshold:
        Store share below which an object counts as read-mostly.
    """
    model = model or HybridMemoryModel()
    a = report.addresses
    plan = PlacementPlan(model=model)

    candidates: list[PlacementAdvice] = []
    for idx in np.unique(a.object_index):
        if idx < 0:
            continue
        mask = a.object_index == idx
        if int(mask.sum()) < min_samples:
            continue
        record = report.registry.records[int(idx)]
        loads = int((a.op[mask] == int(MemOp.LOAD)).sum())
        stores = int((a.op[mask] == int(MemOp.STORE)).sum())
        total = loads + stores
        store_share = stores / total
        if stores == 0:
            classification = "read-only"
        elif store_share <= read_mostly_threshold:
            classification = "read-mostly"
        else:
            classification = "read-write"
        # First-order relative change of the object's memory time.
        delta = (
            (loads * model.load_factor + stores * model.store_factor) / total
        ) - 1.0
        advice = PlacementAdvice(
            record=record,
            classification=classification,
            n_loads=loads,
            n_stores=stores,
            recommend_move=False,
            delta=delta,
        )
        candidates.append(advice)

    # Greedy: best (most negative) delta first, within capacity.
    budget = model.capacity_bytes
    for advice in sorted(candidates, key=lambda x: x.delta):
        if advice.delta < 0 and advice.record.bytes_user <= budget:
            advice.recommend_move = True
            budget -= advice.record.bytes_user
    plan.advice = sorted(candidates, key=lambda x: x.delta)
    return plan
